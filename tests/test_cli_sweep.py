"""The ``repro sweep`` group end to end: run, fault drill, status, resume.

Like the other CLI suites this runs the real reduced() 64x64 pipeline at
minimum scale — one full sweep is minted/trained/evaluated once per module
and the journal-driven commands (status, resume, exit codes) replay it.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep import read_journal, replay_journal


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("cli_sweep")


@pytest.fixture(scope="module")
def sweep_dir(workspace):
    """One 2-trial sweep with a NaN injected into trial 0's first attempt."""
    out = workspace / "sweep"
    code = main([
        "sweep", "--seed", "0", "--out", str(out),
        "run", "--clips", "6", "--epochs", "1", "--workers", "1",
        "--param", "training.seed=0,1",
        "--inject-nan", "0",
        "--max-retries", "1", "--retry-delay", "0.01", "--max-failed", "1",
        "--report", str(workspace / "report.json"),
    ])
    assert code == 0
    return out


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["sweep", "--out", "sw", "run", "--param", "training.seed=0,1"])
        assert args.action == "run"
        assert args.isolation == "none"
        assert args.max_retries == 1
        assert args.max_failed == 0
        assert args.metric == "ede_mean_nm"

    def test_out_is_a_group_flag(self):
        # --out belongs to the sweep group and must precede the action.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "run", "--out", "sw",
                 "--param", "training.seed=0,1"])

    def test_param_values_parse_as_json(self):
        from repro.cli import _parse_param

        assert _parse_param("training.seed=0,1") == (
            "training.seed", [0, 1])
        assert _parse_param("training.learning_rate=0.001") == (
            "training.learning_rate", [0.001])

    def test_trial_site_spec(self):
        from repro.cli import _parse_trial_site

        assert _parse_trial_site("2", "--inject-nan") == (2, False)
        assert _parse_trial_site("2:all", "--inject-nan") == (2, True)


class TestSweepRun:
    def test_journal_records_typed_retry_and_completion(self, sweep_dir):
        records = read_journal(sweep_dir / "journal.jsonl")
        state = replay_journal(records)
        assert state.sweep is not None
        assert len(state.completed()) == 2
        retries = [r for r in records if r["kind"] == "trial_retry"]
        assert [r["reason"] for r in retries] == ["diverged"]
        # exactly-once accounting: trial 0 took 2 attempts, trial 1 one
        assert sorted(state.attempts.values()) == [1, 2]

    def test_report_ranks_completed_trials(self, workspace, sweep_dir):
        payload = json.loads((workspace / "report.json").read_text())
        assert payload["completed"] == 2 and payload["failed"] == 0
        metrics = [t["metrics"]["ede_mean_nm"] for t in payload["trials"]]
        assert all(isinstance(v, float) for v in metrics)

    def test_spec_payload_saved_for_resume(self, sweep_dir):
        records = read_journal(sweep_dir / "journal.jsonl")
        spec = records[0]["spec"]
        # ordered pairs, immune to the journal writer's key sorting
        assert spec["grid"] == [["training.seed", [0, 1]]]
        assert spec["args"]["clips"] == 6


class TestSweepStatus:
    def test_text_lists_every_trial(self, sweep_dir, capsys):
        code = main(["sweep", "--out", str(sweep_dir), "status"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 trials journaled" in out
        assert out.count("completed") == 2

    def test_json_is_pure_and_parseable(self, sweep_dir, capsys):
        code = main(["sweep", "--out", str(sweep_dir), "status", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journaled_trials"] == 2
        statuses = [t["status"] for t in payload["trials"].values()]
        assert statuses == ["completed", "completed"]


class TestSweepResume:
    def test_resume_skips_completed_trials(self, sweep_dir, capsys):
        code = main(["sweep", "--out", str(sweep_dir), "resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("already completed (journal); skipping") == 2
        # no new attempts were journaled
        state = replay_journal(read_journal(sweep_dir / "journal.jsonl"))
        assert sorted(state.attempts.values()) == [1, 2]

    def test_rerun_without_resume_is_rejected(self, sweep_dir, capsys):
        code = main([
            "sweep", "--seed", "0", "--out", str(sweep_dir),
            "run", "--clips", "6", "--epochs", "1",
            "--param", "training.seed=0,1",
        ])
        assert code == 7
        assert "already exists" in capsys.readouterr().err


class TestFailureBudget:
    def test_exhausted_budget_exits_7(self, workspace, capsys):
        out = workspace / "doomed"
        code = main([
            "sweep", "--seed", "0", "--out", str(out),
            "run", "--clips", "6", "--epochs", "1",
            "--param", "training.seed=0,1",
            "--inject-nan", "0:all",
            "--max-retries", "0", "--max-failed", "0",
        ])
        assert code == 7
        assert "failure budget exhausted" in capsys.readouterr().err
        # the failed trial is journaled, so a resume would retry exactly it
        state = replay_journal(read_journal(out / "journal.jsonl"))
        statuses = {state.status_of(d) for d in state.latest}
        assert statuses == {"failed"}
