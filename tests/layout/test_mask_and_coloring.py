"""Mask layout assembly and the Section 3.1 RGB encoding."""

import numpy as np
import pytest

from repro.config import N10
from repro.errors import LayoutError
from repro.geometry import Grid, Rect
from repro.layout import (
    ArrayType,
    MaskLayout,
    build_mask_layout,
    generate_clip,
    render_mask_rgb,
    render_transmission,
)
from repro.layout.coloring import BLUE, GREEN, RED, decode_mask_rgb


@pytest.fixture
def rng():
    return np.random.default_rng(4)


@pytest.fixture
def layout(rng):
    clip = generate_clip(N10, rng, array_type=ArrayType.DENSE_GRID)
    return build_mask_layout(clip)


class TestBuildMaskLayout:
    def test_keeps_drawn_target(self, rng):
        clip = generate_clip(N10, rng)
        layout = build_mask_layout(clip)
        assert layout.drawn_target == clip.target

    def test_opc_enlarges_target(self, layout):
        assert layout.target.width > layout.drawn_target.width

    def test_all_features_nonempty(self, layout):
        assert len(layout.all_features) == 1 + len(layout.neighbors) + len(
            layout.srafs
        )

    def test_validation_rejects_outside_feature(self, layout):
        with pytest.raises(LayoutError):
            MaskLayout(
                tech=layout.tech,
                array_type=layout.array_type,
                target=layout.target,
                neighbors=layout.neighbors,
                srafs=(Rect(-500, -500, -400, -400),),
                drawn_target=layout.drawn_target,
                extent_nm=layout.extent_nm,
            )


class TestRenderMaskRgb:
    def test_shape_and_range(self, layout):
        image = render_mask_rgb(layout, 64)
        assert image.shape == (3, 64, 64)
        assert image.dtype == np.float32
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_target_in_green_channel(self, layout):
        image = render_mask_rgb(layout, 64)
        grid = Grid(size=64, extent_nm=layout.extent_nm)
        row, col = grid.to_pixel(layout.target.center)
        assert image[GREEN, int(round(row)), int(round(col))] > 0.5
        assert image[RED, int(round(row)), int(round(col))] == 0.0

    def test_srafs_in_blue_channel(self, layout):
        image = render_mask_rgb(layout, 64)
        assert image[BLUE].sum() > 0
        # SRAFs are disjoint from contacts, so blue never overlaps green.
        assert float((image[BLUE] * image[GREEN]).max()) == pytest.approx(0.0)

    def test_neighbors_in_red_channel(self, layout):
        image = render_mask_rgb(layout, 64)
        assert (image[RED].sum() > 0) == (len(layout.neighbors) > 0)

    def test_binary_mode(self, layout):
        image = render_mask_rgb(layout, 64, binary=True)
        assert set(np.unique(image)) <= {0.0, 1.0}

    def test_decode_roundtrip(self, layout):
        image = render_mask_rgb(layout, 64)
        target, neighbors, srafs = decode_mask_rgb(image)
        assert np.array_equal(target, image[GREEN])
        assert np.array_equal(neighbors, image[RED])
        assert np.array_equal(srafs, image[BLUE])

    def test_small_image_rejected(self, layout):
        with pytest.raises(LayoutError):
            render_mask_rgb(layout, 4)


class TestRenderTransmission:
    def test_transmission_is_union_of_channels(self, layout):
        grid = Grid(size=64, extent_nm=layout.extent_nm)
        transmission = render_transmission(layout, grid)
        image = render_mask_rgb(layout, 64)
        union = np.clip(image.sum(axis=0), 0, 1)
        assert np.allclose(transmission, union, atol=1e-6)

    def test_range(self, layout):
        grid = Grid(size=32, extent_nm=layout.extent_nm)
        transmission = render_transmission(layout, grid)
        assert transmission.min() >= 0.0 and transmission.max() <= 1.0
