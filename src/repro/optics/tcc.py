"""Hopkins transmission cross coefficients (TCC).

Partially coherent imaging obeys the Hopkins bilinear model: the image
spectrum couples every pair of mask frequencies (f1, f2) through

    TCC(f1, f2) = sum_s J(s) P(s + f1) conj(P(s + f2)),

where J is the source intensity distribution and P the pupil.  On a periodic
simulation grid the mask spectrum lives on integer FFT bins, so the TCC
becomes a finite Hermitian matrix over the bins that can physically pass the
system (``|rho| <= 1 + sigma_outer``).  This module builds that matrix; the
SOCS decomposition in :mod:`repro.optics.socs` turns it into a handful of
coherent convolution kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import OpticalConfig
from ..errors import OpticsError
from .pupil import Pupil
from .source import SourceGrid, annular_source


@dataclass(frozen=True)
class TccModel:
    """The discretized TCC matrix and the frequency bins it couples."""

    #: (M, 2) signed integer FFT bin offsets (kx, ky) of the retained bins
    freq_indices: np.ndarray
    #: (M, M) Hermitian TCC matrix
    matrix: np.ndarray
    grid_size: int
    extent_nm: float
    #: pupil cutoff radius in frequency samples: NA * extent / wavelength
    na_radius_samples: float

    def __post_init__(self) -> None:
        m = self.freq_indices.shape[0]
        if self.matrix.shape != (m, m):
            raise OpticsError(
                f"TCC matrix shape {self.matrix.shape} does not match "
                f"{m} frequency bins"
            )
        hermitian_error = np.abs(self.matrix - self.matrix.conj().T).max()
        if hermitian_error > 1e-8:
            raise OpticsError(
                f"TCC matrix is not Hermitian (max asymmetry {hermitian_error:.3e})"
            )

    @property
    def num_bins(self) -> int:
        return int(self.freq_indices.shape[0])


def na_radius_in_samples(optical: OpticalConfig, extent_nm: float) -> float:
    """Pupil-edge radius measured in FFT frequency samples.

    The frequency spacing of an ``extent_nm``-periodic grid is ``1/extent``;
    the pupil edge sits at ``NA / wavelength``, hence the ratio below.  This
    is independent of the pixel count (which only sets the Nyquist limit).
    """
    return optical.numerical_aperture * extent_nm / optical.wavelength_nm


def default_source(optical: OpticalConfig, samples: int = 21) -> SourceGrid:
    """The annular source described by an :class:`OpticalConfig`."""
    return annular_source(optical.sigma_inner, optical.sigma_outer, samples)


def default_pupil(optical: OpticalConfig) -> Pupil:
    return Pupil(
        wavelength_nm=optical.wavelength_nm,
        numerical_aperture=optical.numerical_aperture,
        defocus_nm=optical.defocus_nm,
    )


def collect_passband_bins(optical: OpticalConfig, grid_size: int,
                          extent_nm: float) -> np.ndarray:
    """Integer FFT bins whose normalized frequency can reach the wafer.

    A mask frequency f contributes only if some source point shifts it into
    the pupil, i.e. ``|rho_mask| <= 1 + sigma_outer``.  Bins are also clipped
    to the grid's Nyquist range.
    """
    radius = na_radius_in_samples(optical, extent_nm)
    cutoff = radius * (1.0 + optical.sigma_outer) + 1.0
    half = grid_size // 2
    limit = int(np.ceil(cutoff))
    if limit > half - 1:
        raise OpticsError(
            "simulation grid cannot represent the optical passband "
            f"(needs Nyquist >= {limit} samples, grid_size={grid_size} "
            f"gives {half - 1}); increase grid_size or shrink the extent"
        )
    k = np.arange(-limit, limit + 1)
    kx, ky = np.meshgrid(k, k)
    keep = np.hypot(kx, ky) <= cutoff
    return np.stack([kx[keep], ky[keep]], axis=1).astype(np.int64)


def compute_tcc_matrix(optical: OpticalConfig, grid_size: int,
                       extent_nm: float, source: SourceGrid = None,
                       pupil: Pupil = None) -> TccModel:
    """Build the discrete TCC matrix for one optical configuration."""
    if source is None:
        source = default_source(optical)
    if pupil is None:
        pupil = default_pupil(optical)

    bins = collect_passband_bins(optical, grid_size, extent_nm)
    radius = na_radius_in_samples(optical, extent_nm)

    # Pupil samples: rho = source point (sigma units) + bin / radius.
    rho_x = source.fx[:, None] + bins[None, :, 0] / radius
    rho_y = source.fy[:, None] + bins[None, :, 1] / radius
    pupil_values = pupil.evaluate(rho_x, rho_y)  # (Ns, M)

    weighted = pupil_values * source.weights[:, None]
    matrix = weighted.T @ pupil_values.conj()

    # Force exact Hermitian symmetry (guards against fp round-off).
    matrix = 0.5 * (matrix + matrix.conj().T)

    return TccModel(
        freq_indices=bins,
        matrix=matrix,
        grid_size=grid_size,
        extent_nm=extent_nm,
        na_radius_samples=radius,
    )
