"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The registry is the machine-readable side of the observability layer: every
hot path (training epochs, simulation stages, CLI commands) records into
labeled metric families, and ``MetricsRegistry.to_dict()`` exports the whole
state as plain JSON-serializable data for the ``--metrics-out`` CLI flag and
the benchmark artifacts.

Everything here is dependency-free and allocation-light: a ``Counter`` is one
float, a ``Histogram`` is a fixed bucket array.  Nothing ever samples the
clock — wall-time measurement lives in :mod:`repro.telemetry.trace`.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import TelemetryError

#: default latency bucket upper bounds, in seconds (log-ish spacing from
#: sub-millisecond NN batches up to multi-minute rigorous simulations)
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

LabelDict = Dict[str, str]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counters only go up, got inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with quantile summaries.

    Buckets are upper bounds (``observe(v)`` lands in the first bucket with
    ``v <= bound``); observations beyond the last bound go to an implicit
    overflow bucket.  Quantiles are estimated as the upper bound of the
    bucket containing the requested rank — coarse, but stable, bounded-memory,
    and exactly what latency dashboards need.
    """

    __slots__ = ("buckets", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, buckets: Optional[Iterable[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS_S
        if not bounds:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (upper bucket bound; exact max for p100)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must lie in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            if cumulative >= rank:
                return min(bound, self._max)
        return self._max  # overflow bucket: report the true maximum

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "buckets": {
                **{f"le_{bound:g}": count
                   for bound, count in zip(self.buckets, self._counts)},
                "le_inf": self._counts[-1],
            },
            # explicit parallel arrays: the machine-mergeable form (the
            # le_-keyed dict above is for human diffing; %g formatting is
            # lossy, so merges and the Prometheus exporter use these)
            "bucket_bounds": list(self.buckets),
            "bucket_counts": list(self._counts),
            "quantiles": {
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99),
            },
        }

    def merge_dict(self, data: Mapping) -> None:
        """Fold an exported histogram (``to_dict`` form) into this one.

        Requires identical bucket bounds — a worker and its parent always
        share them because the worker-side registry is built from the same
        config. Fail-closed otherwise: silently resampling into different
        buckets would corrupt quantiles.
        """
        bounds = data.get("bucket_bounds")
        counts = data.get("bucket_counts")
        if bounds is None or counts is None:
            raise TelemetryError(
                "histogram snapshot lacks bucket_bounds/bucket_counts "
                "(exported by an older schema?); cannot merge"
            )
        if tuple(bounds) != self.buckets:
            raise TelemetryError(
                f"cannot merge histograms with different buckets: "
                f"{tuple(bounds)} vs {self.buckets}"
            )
        if len(counts) != len(self._counts):
            raise TelemetryError(
                f"histogram snapshot has {len(counts)} bucket counts, "
                f"expected {len(self._counts)}"
            )
        for i, count in enumerate(counts):
            self._counts[i] += int(count)
        merged = int(data.get("count", 0))
        self._count += merged
        self._sum += float(data.get("sum", 0.0))
        if merged:
            self._min = min(self._min, float(data.get("min", self._min)))
            self._max = max(self._max, float(data.get("max", self._max)))


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: a type plus its labeled children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Labeled metric families with a JSON-friendly export.

    Thread-safe for registration; individual metric updates are plain
    attribute arithmetic (the GIL makes those safe enough for our use).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def _get(self, name: str, kind: str, help: str,
             labels: Optional[Mapping[str, str]], **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"cannot re-register as {kind}"
                )
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = _METRIC_TYPES[kind](**kwargs)
                family.children[key] = child
            return child

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None,
                help: str = "") -> Counter:
        return self._get(name, "counter", help, labels)

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None,
              help: str = "") -> Gauge:
        return self._get(name, "gauge", help, labels)

    def histogram(self, name: str, labels: Optional[Mapping[str, str]] = None,
                  help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        return self._get(name, "histogram", help, labels, buckets=buckets)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time export: ``{family: {type, help, series: [...]}}``."""
        out: Dict[str, dict] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "series": [
                        {"labels": dict(key), **child.to_dict()}
                        for key, child in sorted(family.children.items())
                    ],
                }
        return out

    def to_dict(self) -> dict:
        """Schema-versioned export, the ``--metrics-out`` file format."""
        return {"schema_version": 1, "metrics": self.snapshot()}

    # -- merging ------------------------------------------------------------

    def merge_snapshot(self, data: Mapping) -> None:
        """Fold an exported snapshot (a worker's registry) into this one.

        Accepts either a bare :meth:`snapshot` mapping or the
        :meth:`to_dict` wrapper.  Counters add, histograms merge bucket-wise
        (same bounds required), gauges are last-write-wins in merge order —
        fold shards in submission order so the result is deterministic.
        """
        if "schema_version" in data and "metrics" in data:
            data = data["metrics"]
        for name in sorted(data):
            family = data[name]
            kind = family.get("type")
            if kind not in _METRIC_TYPES:
                raise TelemetryError(
                    f"metrics snapshot family {name!r} has unknown type "
                    f"{kind!r}"
                )
            for series in family.get("series", ()):
                labels = series.get("labels", {})
                if kind == "counter":
                    self.counter(name, labels=labels,
                                 help=family.get("help", "")).inc(
                                     float(series.get("value", 0.0)))
                elif kind == "gauge":
                    self.gauge(name, labels=labels,
                               help=family.get("help", "")).set(
                                   float(series.get("value", 0.0)))
                else:
                    bounds = series.get("bucket_bounds")
                    child = self.histogram(
                        name, labels=labels, help=family.get("help", ""),
                        buckets=bounds if bounds else None)
                    child.merge_dict(series)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)


#: process-global registry — the default sink when callers don't bring their own
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# Ambient (thread-local) registry for worker shards
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


def activate_registry(registry: Optional[MetricsRegistry],
                      ) -> Optional[MetricsRegistry]:
    """Install a shard-local registry as this thread's ambient one.

    Mirrors :func:`repro.telemetry.trace.activate_tracer`: the worker pool
    points the ambient slot at a fresh registry around each shard, the shard
    records into it via :func:`get_active_registry`, and the delta ships back
    with the shard result for :meth:`MetricsRegistry.merge_snapshot` in the
    parent.  Returns the previous value; restore it in ``finally``.
    """
    previous = getattr(_ACTIVE, "registry", None)
    _ACTIVE.registry = registry
    return previous


def get_active_registry() -> Optional[MetricsRegistry]:
    """This thread's ambient registry, or None outside an instrumented shard."""
    return getattr(_ACTIVE, "registry", None)
