"""Loss values and gradients, including numerical checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import bce_with_logits, l1_loss, mse_loss


def numeric_grad(loss_fn, x, target, eps=1e-5):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus, _ = loss_fn(x, target)
        flat[i] = original - eps
        f_minus, _ = loss_fn(x, target)
        flat[i] = original
        out[i] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestBceWithLogits:
    def test_perfect_confidence_is_near_zero(self):
        logits = np.array([[20.0], [-20.0]])
        targets = np.array([[1.0], [0.0]])
        value, _ = bce_with_logits(logits, targets)
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_wrong_confidence_is_large(self):
        logits = np.array([[20.0]])
        targets = np.array([[0.0]])
        value, _ = bce_with_logits(logits, targets)
        assert value == pytest.approx(20.0, rel=1e-3)

    def test_symmetric_at_zero(self):
        logits = np.zeros((4, 1))
        value, _ = bce_with_logits(logits, np.ones((4, 1)))
        assert value == pytest.approx(np.log(2))

    def test_extreme_logits_finite(self):
        logits = np.array([[1e4], [-1e4]])
        value, grad = bce_with_logits(logits, np.array([[0.0], [1.0]]))
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))

    def test_gradient_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 2))
        targets = (rng.uniform(size=(3, 2)) > 0.5).astype(float)
        _, grad = bce_with_logits(logits, targets)
        assert np.allclose(
            grad, numeric_grad(bce_with_logits, logits, targets), atol=1e-6
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            bce_with_logits(np.zeros((2, 1)), np.zeros((3, 1)))


class TestL1Loss:
    def test_value(self):
        value, _ = l1_loss(np.array([1.0, 3.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(2.0)

    def test_gradient_is_scaled_sign(self):
        pred = np.array([2.0, -1.0, 5.0])
        target = np.array([0.0, 0.0, 5.0])
        _, grad = l1_loss(pred, target)
        assert np.allclose(grad, np.array([1.0, -1.0, 0.0]) / 3)

    @given(st.integers(1, 6))
    @settings(deadline=None)
    def test_zero_at_target(self, n):
        x = np.linspace(-1, 1, n)
        value, grad = l1_loss(x, x.copy())
        assert value == 0.0
        assert np.allclose(grad, 0.0)


class TestMseLoss:
    def test_value(self):
        value, _ = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(2.5)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(2)
        pred = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 3))
        _, grad = mse_loss(pred, target)
        assert np.allclose(
            grad, numeric_grad(mse_loss, pred, target), atol=1e-5
        )
