"""Figure 6: mask input / CGAN output / LithoGAN output / golden, per array type.

Regenerates the qualitative comparison as ASCII panels (one row per clip,
covering all three contact-array types like the paper's figure) and writes
``artifacts/figure6.txt``.  The visual claim being reproduced: CGAN gets the
*shape* right but can misplace the *center*; LithoGAN nails both.
"""

from __future__ import annotations

import numpy as np
from conftest import write_artifact

from repro.data import bbox_center_rc
from repro.eval import ascii_pattern, figure6_panels, pick_panel_indices, side_by_side


def test_figure6(bundle_n10, artifact_dir, benchmark):
    indices = pick_panel_indices(bundle_n10.test, per_type=2)
    panels = figure6_panels(
        bundle_n10.test,
        bundle_n10.predictions["CGAN"],
        bundle_n10.predictions["LithoGAN"],
        indices,
    )

    lines = []
    for panel in panels:
        mask_mono = np.clip(panel.mask.sum(axis=0), 0, 1)
        blocks = [
            ascii_pattern(mask_mono, width=24),
            ascii_pattern(panel.golden, width=24),
            ascii_pattern(panel.cgan, width=24),
            ascii_pattern(panel.lithogan, width=24),
        ]
        lines.append(f"--- clip {panel.index} ({panel.array_type}) ---")
        lines.extend(
            side_by_side(blocks, ["mask", "golden", "CGAN", "LithoGAN"])
        )
        lines.append("")
    write_artifact(artifact_dir, "figure6.txt", lines)

    # Every panel's LithoGAN prediction must land near the golden center.
    for panel in panels:
        if panel.lithogan.sum() == 0:
            continue
        golden_center = bbox_center_rc(panel.golden)
        litho_center = bbox_center_rc(panel.lithogan)
        drift = np.hypot(
            golden_center[0] - litho_center[0],
            golden_center[1] - litho_center[1],
        )
        assert drift < panel.golden.shape[0] / 4

    benchmark(
        figure6_panels,
        bundle_n10.test,
        bundle_n10.predictions["CGAN"],
        bundle_n10.predictions["LithoGAN"],
        indices,
    )
