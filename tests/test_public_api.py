"""Public-API surface: every exported name is importable and documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.api",
    "repro.geometry",
    "repro.layout",
    "repro.optics",
    "repro.resist",
    "repro.sim",
    "repro.nn",
    "repro.data",
    "repro.models",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.eval",
    "repro.telemetry",
    "repro.runtime",
    "repro.serving",
    "repro.ilt",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicApi:
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_callables_documented(self, module_name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), (
                    f"{module_name}.{name} has no docstring"
                )


def test_version_is_exposed():
    import repro

    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(part.isdigit() for part in parts)


def test_exceptions_form_one_hierarchy():
    import repro
    from repro.errors import ReproError

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) and issubclass(obj, Exception):
            assert issubclass(obj, ReproError) or obj is ReproError
