"""Edge displacement error (Definition 1)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.metrics import ede_nm, ede_per_edge_nm


def box(size=32, rlo=10, rhi=20, clo=12, chi=22):
    image = np.zeros((size, size))
    image[rlo:rhi, clo:chi] = 1.0
    return image


class TestEdePerEdge:
    def test_identical_is_zero(self):
        golden = box()
        assert ede_per_edge_nm(golden, golden.copy(), 0.5) == (0, 0, 0, 0)

    def test_single_edge_displacement(self):
        golden = box(rlo=10, rhi=20)
        predicted = box(rlo=12, rhi=20)  # top edge moved 2 px
        top, bottom, left, right = ede_per_edge_nm(golden, predicted, 0.5)
        assert top == pytest.approx(1.0)  # 2 px * 0.5 nm
        assert bottom == left == right == 0.0

    def test_uniform_dilation(self):
        golden = box(rlo=10, rhi=20, clo=10, chi=20)
        predicted = box(rlo=9, rhi=21, clo=9, chi=21)
        edges = ede_per_edge_nm(golden, predicted, 2.0)
        assert all(e == pytest.approx(2.0) for e in edges)

    def test_pure_shift(self):
        golden = box(rlo=10, rhi=20, clo=10, chi=20)
        predicted = box(rlo=13, rhi=23, clo=10, chi=20)
        edges = ede_per_edge_nm(golden, predicted, 1.0)
        assert edges[0] == edges[1] == pytest.approx(3.0)  # top and bottom

    def test_empty_prediction_with_penalty(self):
        golden = box()
        empty = np.zeros_like(golden)
        edges = ede_per_edge_nm(golden, empty, 1.0, empty_penalty_nm=16.0)
        assert edges == (16.0,) * 4

    def test_empty_prediction_without_penalty_raises(self):
        with pytest.raises(EvaluationError):
            ede_per_edge_nm(box(), np.zeros((32, 32)), 1.0)

    def test_empty_golden_raises(self):
        with pytest.raises(EvaluationError):
            ede_per_edge_nm(np.zeros((32, 32)), box(), 1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            ede_per_edge_nm(box(32), box(16, 2, 8, 2, 8), 1.0)

    def test_bad_scale_raises(self):
        with pytest.raises(EvaluationError):
            ede_per_edge_nm(box(), box(), 0.0)


class TestEdeMean:
    def test_mean_of_edges(self):
        golden = box(rlo=10, rhi=20, clo=10, chi=20)
        predicted = box(rlo=12, rhi=20, clo=10, chi=20)
        assert ede_nm(golden, predicted, 1.0) == pytest.approx(0.5)

    def test_scale_linearity(self):
        golden = box()
        predicted = box(rlo=11)
        assert ede_nm(golden, predicted, 2.0) == pytest.approx(
            2 * ede_nm(golden, predicted, 1.0)
        )

    def test_symmetry(self):
        a, b = box(rlo=10), box(rlo=13)
        assert ede_nm(a, b, 1.0) == pytest.approx(ede_nm(b, a, 1.0))
