"""Run health reports: correlation, fail-closed inputs, forward compat."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    RunLogger,
    Tracer,
    build_report,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.profile import LayerStats, ProfileReport


def _write_good_log(path):
    with RunLogger(path) as logger:
        logger.run_start(command="mint", node="N10",
                         build={"version": "1.0.0", "git_sha": "abc1234"})
        logger.stage_end("optical", 2.0, count=8)
        logger.stage_end("resist", 1.0, count=8)
        logger.run_end(status="ok", seconds=3.5)
        return logger.run_id


def _write_trace(path):
    tracer = Tracer()
    tracer.add_record("parallel_shard", 0.4, shard=0, worker="w0")
    tracer.add_record("parallel_shard", 0.2, shard=1, worker="w1")
    tracer.add_record("parallel_shard", 0.3, shard=2, worker="w0")
    return write_chrome_trace(path, tracer)


class TestBuildReport:
    def test_good_log_yields_healthy_report(self, tmp_path):
        log = tmp_path / "run.jsonl"
        run_id = _write_good_log(log)
        report = build_report(log)
        assert report.healthy
        assert [r.run_id for r in report.runs] == [run_id]
        run = report.runs[0]
        assert (run.command, run.status) == ("mint", "ok")
        assert run.seconds == pytest.approx(3.5)
        assert run.build["git_sha"] == "abc1234"
        assert report.stages["optical"] == {"seconds": 2.0, "count": 8}
        assert report.sources == {"log": str(log)}

    def test_missing_run_end_marks_run_truncated(self, tmp_path):
        log = tmp_path / "run.jsonl"
        logger = RunLogger(log)
        logger.run_start(command="train")
        logger.close()
        report = build_report(log)
        assert not report.healthy
        assert report.runs[0].status == "truncated"

    def test_multi_run_log_summarized_per_run(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        _write_good_log(log)
        report = build_report(log)
        assert len(report.runs) == 2
        assert report.healthy
        # stage seconds accumulate across runs
        assert report.stages["optical"]["seconds"] == pytest.approx(4.0)

    def test_unknown_event_types_are_tolerated_and_counted(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        record = {"schema_version": 1, "event": "quantum_flux",
                  "run_id": "run-x", "seq": 99}
        with log.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        report = build_report(log)
        assert report.unknown_events == 1
        assert report.healthy  # the run itself still reads as ok

    def test_missing_log_fails_closed_naming_path(self, tmp_path):
        missing = tmp_path / "absent.jsonl"
        with pytest.raises(TelemetryError, match=str(missing)):
            build_report(missing)

    def test_corrupt_log_fails_closed_naming_path(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        text = log.read_text().splitlines()
        text.insert(1, "{{{ not json")
        log.write_text("\n".join(text) + "\n")
        with pytest.raises(TelemetryError, match=str(log)):
            build_report(log)

    def test_worker_usage_and_skew_from_trace(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        trace = _write_trace(tmp_path / "trace.json")
        report = build_report(log, trace_path=trace)
        lanes = {u.worker: u for u in report.workers}
        assert lanes["w0"].shards == 2
        assert lanes["w0"].busy_s == pytest.approx(0.7)
        assert lanes["w1"].busy_s == pytest.approx(0.2)
        # skew = max busy / mean busy = 0.7 / 0.45
        assert report.worker_skew == pytest.approx(0.7 / 0.45)

    def test_corrupt_trace_fails_closed_naming_path(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        bad = tmp_path / "trace.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        with pytest.raises(TelemetryError, match=str(bad)):
            build_report(log, trace_path=bad)

    def test_headline_counters_summed_across_series(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        registry = MetricsRegistry()
        registry.counter("parallel_tasks_total", labels={"task": "a"}).inc(2)
        registry.counter("parallel_tasks_total", labels={"task": "b"}).inc(3)
        registry.counter("unrelated_total").inc(9)
        metrics = write_metrics(tmp_path / "metrics.json", registry)
        report = build_report(log, metrics_path=metrics)
        assert report.counters == {"parallel_tasks_total": 5.0}

    def test_metrics_without_wrapper_fails_closed(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        bad = tmp_path / "metrics.json"
        bad.write_text('{"no_metrics_key": {}}')
        with pytest.raises(TelemetryError, match=str(bad)):
            build_report(log, metrics_path=bad)

    def test_profile_hot_layers_attached(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        profile = ProfileReport(rows=(
            LayerStats("gen", 0, "Conv", "-", calls=1,
                       forward_s=1.0, flops=500),
            LayerStats("gen", 1, "ReLU", "-", calls=1,
                       forward_s=0.1, flops=5),
        )).save(tmp_path / "profile.json")
        report = build_report(log, profile_path=profile)
        assert report.hot_layers[0]["op"] == "Conv"
        assert report.profile_forward_s == pytest.approx(1.1)

    def test_to_dict_and_text_render(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        report = build_report(log, trace_path=_write_trace(
            tmp_path / "trace.json"))
        payload = report.to_dict()
        json.dumps(payload)  # must be serializable
        assert payload["healthy"] is True
        text = report.format_text()
        assert "runs: 1 (healthy)" in text
        assert "workers: 2 lanes" in text
        assert "[v1.0.0@abc1234]" in text

    def test_save_round_trips(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        report = build_report(log)
        saved = report.save(tmp_path / "report.json")
        assert json.loads(saved.read_text()) == report.to_dict()


class TestSweepSection:
    def test_trial_events_summarized(self, tmp_path):
        log = tmp_path / "run.jsonl"
        with RunLogger(log) as logger:
            logger.run_start(command="sweep")
            logger.trial_start("d1", 1, trial="trial-000")
            logger.trial_retry("d1", 1, "diverged", trial="trial-000",
                               delay_s=0.5)
            logger.trial_start("d1", 2, trial="trial-000")
            logger.trial_end("d1", "completed", trial="trial-000",
                             attempts=2)
            logger.trial_start("d2", 1, trial="trial-001")
            logger.trial_end("d2", "failed", trial="trial-001",
                             attempts=1, reason="timeout")
            logger.run_end(status="ok")
        report = build_report(log)
        assert report.sweep["trials"] == 2
        assert report.sweep["completed"] == 1
        assert report.sweep["failed"] == 1
        assert report.sweep["retries_by_reason"] == {"diverged": 1}
        text = report.format_text()
        assert "sweep: trials=2" in text
        payload = report.to_dict()
        assert payload["sweep"]["completed"] == 1

    def test_report_without_trials_omits_sweep_line(self, tmp_path):
        log = tmp_path / "run.jsonl"
        _write_good_log(log)
        report = build_report(log)
        assert "sweep:" not in report.format_text()
