"""Evaluation metrics: EDE (Def. 1), segmentation (Defs. 2-4), CD, center."""

from .ede import ede_nm, ede_per_edge_nm
from .segmentation import (
    class_accuracy,
    mean_iou,
    pixel_accuracy,
    segmentation_metrics,
)
from .center import center_error_nm
from .cd import cd_error_nm, measure_cd_nm
from .epe import epe_at_edges, epe_nm

__all__ = [
    "ede_nm",
    "ede_per_edge_nm",
    "pixel_accuracy",
    "class_accuracy",
    "mean_iou",
    "segmentation_metrics",
    "center_error_nm",
    "measure_cd_nm",
    "cd_error_nm",
    "epe_at_edges",
    "epe_nm",
]
