"""Run health reports: correlate event logs, traces, metrics, and profiles.

``repro report`` is the human entry point; :func:`build_report` is the
library one.  It takes the artifacts a run leaves behind — the JSONL event
log (required), and optionally the merged Chrome trace, the metrics
snapshot, and a layer profile — and folds them into one :class:`RunReport`:
per-run outcomes, per-stage time breakdown, worker utilization and skew,
incident counts (fallbacks, quarantines, rollbacks, worker crashes, shed
requests), a serving-lifecycle summary (model swaps, canary verdicts,
serving rollbacks, sheds per tenant), and the top hot layers.

Reading is **fail-closed**: a corrupt input raises
:class:`~repro.errors.TelemetryError` naming the offending path (the CLI
maps that to a non-zero exit), but *unknown event types* are tolerated and
counted — a newer writer must not brick an older reader.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import TelemetryError
from .events import EVENT_TYPES, read_run_log, split_runs
from .export import validate_chrome_trace
from .profile import ProfileReport

#: export format version for report JSON artifacts
REPORT_SCHEMA_VERSION = 1

#: counter families the report surfaces as headline totals
_HEADLINE_COUNTERS = (
    "parallel_tasks_total",
    "parallel_worker_failures_total",
    "train_epochs_total",
    "rollbacks_total",
    "serve_clips_total",
    "serve_fallbacks_total",
    "serve_model_swaps_total",
    "serve_rollbacks_total",
    "serve_shed_total",
    "data_records_quarantined_total",
    "data_records_repaired_total",
    "sweep_trials_completed_total",
    "sweep_trials_retried_total",
    "sweep_trials_failed_total",
    "ilt_steps_total",
    "ilt_verifications_total",
)


@dataclass(frozen=True)
class RunSummary:
    """One run's outcome, distilled from its event slice."""

    run_id: str
    command: str
    status: str           # run_end status, or "truncated" if none arrived
    seconds: float
    events: int
    build: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "command": self.command,
            "status": self.status,
            "seconds": self.seconds,
            "events": self.events,
            "build": dict(self.build),
        }


@dataclass(frozen=True)
class WorkerUsage:
    """Busy time one worker lane accumulated across ``parallel_shard`` spans."""

    worker: str
    shards: int
    busy_s: float

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "shards": self.shards,
            "busy_s": self.busy_s,
        }


@dataclass(frozen=True)
class RunReport:
    """The correlated health report ``repro report`` renders."""

    runs: Tuple[RunSummary, ...]
    stages: Dict[str, Dict[str, float]]
    incidents: Dict[str, int]
    unknown_events: int
    workers: Tuple[WorkerUsage, ...] = ()
    worker_skew: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    hot_layers: Tuple[dict, ...] = ()
    profile_forward_s: float = 0.0
    profile_backward_s: float = 0.0
    sources: Dict[str, str] = field(default_factory=dict)
    #: serving-lifecycle summary: model swaps, canary verdicts, serving
    #: rollbacks, and requests shed per tenant
    serving: Dict[str, Any] = field(default_factory=dict)
    #: sweep-health summary: distinct trials seen, terminal statuses, and
    #: retry counts per failure reason
    sweep: Dict[str, Any] = field(default_factory=dict)
    #: inverse-lithography summary: runs, gradient steps, simulator
    #: verifications, mean EPE, and how many runs improved on rule OPC
    ilt: Dict[str, Any] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when every run completed with an ``ok`` status."""
        return bool(self.runs) and all(
            run.status == "ok" for run in self.runs
        )

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "healthy": self.healthy,
            "runs": [run.to_dict() for run in self.runs],
            "stages": {name: dict(stats)
                       for name, stats in sorted(self.stages.items())},
            "incidents": dict(sorted(self.incidents.items())),
            "unknown_events": self.unknown_events,
            "workers": [usage.to_dict() for usage in self.workers],
            "worker_skew": self.worker_skew,
            "counters": dict(sorted(self.counters.items())),
            "hot_layers": [dict(layer) for layer in self.hot_layers],
            "profile": {
                "forward_s": self.profile_forward_s,
                "backward_s": self.profile_backward_s,
            },
            "sources": dict(self.sources),
            "serving": {
                key: (dict(sorted(value.items()))
                      if isinstance(value, dict) else value)
                for key, value in sorted(self.serving.items())
            },
            "sweep": {
                key: (dict(sorted(value.items()))
                      if isinstance(value, dict) else value)
                for key, value in sorted(self.sweep.items())
            },
            "ilt": {
                key: (dict(sorted(value.items()))
                      if isinstance(value, dict) else value)
                for key, value in sorted(self.ilt.items())
            },
        }

    def format_text(self) -> str:
        """The human-readable report body."""
        lines: List[str] = []
        lines.append(f"runs: {len(self.runs)} "
                     f"({'healthy' if self.healthy else 'UNHEALTHY'})")
        for run in self.runs:
            build = run.build or {}
            version = build.get("version", "?")
            sha = build.get("git_sha") or "nogit"
            lines.append(
                f"  {run.run_id:<18} {run.command:<16} {run.status:<10} "
                f"{run.seconds:>8.2f}s  {run.events:>4} events  "
                f"[v{version}@{sha}]"
            )
        if self.stages:
            lines.append("stages:")
            ranked = sorted(self.stages.items(),
                            key=lambda item: (-item[1]["seconds"], item[0]))
            total = sum(stats["seconds"] for _, stats in ranked) or 1.0
            for name, stats in ranked:
                lines.append(
                    f"  {name:<24} {stats['seconds']:>9.3f}s "
                    f"x{int(stats['count']):<5} "
                    f"{stats['seconds'] / total:>5.1%}"
                )
        if self.workers:
            lines.append(f"workers: {len(self.workers)} lanes, "
                         f"skew {self.worker_skew:.2f}x")
            for usage in self.workers:
                lines.append(
                    f"  {usage.worker:<6} {usage.shards:>4} shards "
                    f"{usage.busy_s:>9.3f}s busy"
                )
        serving = self.serving or {}
        if any(serving.get(key) for key in
               ("swaps", "rollbacks", "canary_verdicts", "sheds_by_tenant")):
            verdicts = serving.get("canary_verdicts", {})
            parts = [
                f"swaps={serving.get('swaps', 0)}",
                f"rollbacks={serving.get('rollbacks', 0)}",
                "canary promote={}/rollback={}".format(
                    verdicts.get("promote", 0), verdicts.get("rollback", 0)),
            ]
            sheds = serving.get("sheds_by_tenant", {})
            if sheds:
                parts.append("shed " + " ".join(
                    f"{tenant}={count}"
                    for tenant, count in sorted(sheds.items())))
            lines.append("serving: " + ", ".join(parts))
        sweep = self.sweep or {}
        if sweep.get("trials"):
            parts = [
                f"trials={sweep.get('trials', 0)}",
                f"completed={sweep.get('completed', 0)}",
                f"failed={sweep.get('failed', 0)}",
                f"interrupted={sweep.get('interrupted', 0)}",
            ]
            retries = sweep.get("retries_by_reason", {})
            if retries:
                parts.append("retries " + " ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(retries.items())))
            lines.append("sweep: " + ", ".join(parts))
        ilt = self.ilt or {}
        if ilt.get("runs"):
            parts = [
                f"runs={ilt.get('runs', 0)}",
                f"steps={ilt.get('steps', 0)}",
                f"verifications={ilt.get('verifications', 0)}",
            ]
            epe = ilt.get("epe_ilt_nm")
            if epe is not None:
                parts.append(f"epe={epe:.2f}nm")
            parts.append(f"improved={ilt.get('improved', 0)}")
            lines.append("ilt: " + ", ".join(parts))
        active = {name: count for name, count in self.incidents.items()
                  if count}
        lines.append("incidents: " + (
            ", ".join(f"{name}={count}"
                      for name, count in sorted(active.items()))
            if active else "none"
        ))
        if self.unknown_events:
            lines.append(
                f"unknown event types tolerated: {self.unknown_events}"
            )
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<36} {value:g}")
        if self.hot_layers:
            lines.append("hot layers (top {}):".format(len(self.hot_layers)))
            for layer in self.hot_layers:
                lines.append(
                    f"  {layer['network']}[{layer['index']}] "
                    f"{layer['op']:<8} {layer['total_s']:>9.4f}s "
                    f"{layer['flops'] / 1e9:>8.3f} gflops"
                )
        return "\n".join(lines)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                            encoding="utf-8")
        except OSError as exc:
            raise TelemetryError(
                f"cannot write report to {path}: {exc}"
            ) from exc
        return path


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _load_json(path: Union[str, Path], what: str) -> Any:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise TelemetryError(f"cannot read {what} {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"corrupt {what} {path}: {exc}") from exc


def _summarize_runs(runs: List[List[dict]],
                    ) -> Tuple[List[RunSummary], Dict, Dict, Dict, Dict,
                               Dict, int]:
    summaries: List[RunSummary] = []
    stages: Dict[str, Dict[str, float]] = {}
    incidents = {
        "fallbacks": 0, "breaker_transitions": 0, "rollbacks": 0,
        "worker_crashes": 0, "records_quarantined": 0,
        "records_repaired": 0, "rejected_inputs": 0, "requests_shed": 0,
    }
    serving: Dict[str, Any] = {
        "swaps": 0,
        "rollbacks": 0,
        "canary_verdicts": {"promote": 0, "rollback": 0},
        "sheds_by_tenant": {},
    }
    sweep: Dict[str, Any] = {
        "trials": 0,
        "completed": 0,
        "failed": 0,
        "interrupted": 0,
        "retries_by_reason": {},
    }
    sweep_digests: set = set()
    ilt: Dict[str, Any] = {
        "runs": 0,
        "steps": 0,
        "verifications": 0,
        "improved": 0,
    }
    ilt_epes: List[float] = []
    unknown = 0
    for events in runs:
        first = events[0]
        command = str(first.get("command", "?"))
        status = "truncated"
        seconds = 0.0
        if first.get("event") != "run_start":
            # tail of an earlier truncated run: no run_start to anchor it
            command, status = "?", "orphaned"
        for record in events:
            event = record.get("event")
            if event not in EVENT_TYPES:
                unknown += 1
                continue
            if event == "stage_end":
                name = str(record.get("stage", "?"))
                stats = stages.setdefault(
                    name, {"seconds": 0.0, "count": 0})
                stats["seconds"] += float(record.get("seconds") or 0.0)
                # a stage_end aggregates count spans of that stage
                stats["count"] += int(record.get("count") or 1)
            elif event == "fallback":
                incidents["fallbacks"] += 1
            elif event == "breaker":
                incidents["breaker_transitions"] += 1
            elif event == "rollback":
                incidents["rollbacks"] += 1
                if record.get("phase") == "serving":
                    serving["rollbacks"] += 1
            elif event == "model_swap":
                serving["swaps"] += 1
            elif event == "canary_verdict":
                verdict = str(record.get("verdict", "?"))
                verdicts = serving["canary_verdicts"]
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
            elif event == "shed":
                incidents["requests_shed"] += 1
                tenant = str(record.get("tenant", "?"))
                sheds = serving["sheds_by_tenant"]
                sheds[tenant] = sheds.get(tenant, 0) + 1
            elif event == "worker_crash":
                incidents["worker_crashes"] += 1
            elif event == "trial_start":
                sweep_digests.add(str(record.get("digest", "?")))
            elif event == "trial_retry":
                reason = str(record.get("reason", "?"))
                retries = sweep["retries_by_reason"]
                retries[reason] = retries.get(reason, 0) + 1
            elif event == "trial_end":
                sweep_digests.add(str(record.get("digest", "?")))
                trial_status = str(record.get("status", "?"))
                if trial_status in sweep:
                    sweep[trial_status] += 1
            elif event == "ilt_start":
                ilt["runs"] += 1
            elif event == "ilt_step":
                ilt["steps"] += 1
            elif event == "ilt_end":
                ilt["verifications"] += int(record.get("verified") or 0)
                if record.get("improved"):
                    ilt["improved"] += 1
                epe = record.get("epe_ilt_nm")
                if isinstance(epe, (int, float)):
                    ilt_epes.append(float(epe))
            elif event == "data_quarantine":
                incidents["records_quarantined"] += int(
                    record.get("quarantined") or 0)
            elif event == "data_repair":
                incidents["records_repaired"] += int(
                    record.get("repaired") or 0)
            elif event == "admission":
                incidents["rejected_inputs"] += int(
                    record.get("rejected") or 0)
            elif event == "run_end":
                status = str(record.get("status", "ok"))
                seconds = float(record.get("seconds") or 0.0)
        summaries.append(RunSummary(
            run_id=str(first.get("run_id", "?")),
            command=command,
            status=status,
            seconds=seconds,
            events=len(events),
            build=dict(first.get("build") or {}),
        ))
    sweep["trials"] = len(sweep_digests)
    if ilt_epes:
        ilt["epe_ilt_nm"] = sum(ilt_epes) / len(ilt_epes)
    return summaries, stages, incidents, serving, sweep, ilt, unknown


def _worker_usage(trace: dict) -> Tuple[List[WorkerUsage], float]:
    lanes: Dict[str, Dict[str, float]] = {}
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "X" or event.get("name") != "parallel_shard":
            continue
        args = event.get("args", {})
        worker = str(args.get("worker") or f"w{args.get('shard', '?')}")
        lane = lanes.setdefault(worker, {"shards": 0, "busy_s": 0.0})
        lane["shards"] += 1
        lane["busy_s"] += float(event.get("dur", 0.0)) / 1e6
    usage = [
        WorkerUsage(worker=worker, shards=int(lane["shards"]),
                    busy_s=lane["busy_s"])
        for worker, lane in sorted(lanes.items())
    ]
    busy = [lane.busy_s for lane in usage]
    mean = sum(busy) / len(busy) if busy else 0.0
    skew = (max(busy) / mean) if mean > 0 else 0.0
    return usage, skew


def _counter_totals(snapshot: dict) -> Dict[str, float]:
    metrics = snapshot.get("metrics", snapshot)
    totals: Dict[str, float] = {}
    for name in _HEADLINE_COUNTERS:
        family = metrics.get(name)
        if not isinstance(family, dict):
            continue
        totals[name] = sum(
            float(series.get("value", 0.0))
            for series in family.get("series", ())
        )
    return totals


def build_report(log_path: Union[str, Path], *,
                 trace_path: Optional[Union[str, Path]] = None,
                 metrics_path: Optional[Union[str, Path]] = None,
                 profile_path: Optional[Union[str, Path]] = None,
                 ) -> RunReport:
    """Correlate a run's artifacts into a :class:`RunReport`.

    Only the event log is required.  Each optional artifact is validated
    before use; any corruption raises :class:`TelemetryError` naming the
    path, so callers fail closed rather than reporting from bad data.
    """
    log_path = Path(log_path)
    if not log_path.exists():
        raise TelemetryError(f"run log not found: {log_path}")
    events = read_run_log(log_path)
    if not events:
        raise TelemetryError(f"run log {log_path} contains no events")
    (summaries, stages, incidents, serving, sweep, ilt,
     unknown) = _summarize_runs(split_runs(events))
    sources = {"log": str(log_path)}

    workers: List[WorkerUsage] = []
    skew = 0.0
    if trace_path is not None:
        trace = _load_json(trace_path, "trace")
        try:
            validate_chrome_trace(trace)
        except TelemetryError as exc:
            raise TelemetryError(f"invalid trace {trace_path}: {exc}") from exc
        workers, skew = _worker_usage(trace)
        sources["trace"] = str(trace_path)

    counters: Dict[str, float] = {}
    if metrics_path is not None:
        snapshot = _load_json(metrics_path, "metrics snapshot")
        if not isinstance(snapshot, dict) or "metrics" not in snapshot:
            raise TelemetryError(
                f"invalid metrics snapshot {metrics_path}: expected an "
                "object with a 'metrics' key"
            )
        counters = _counter_totals(snapshot)
        sources["metrics"] = str(metrics_path)

    hot_layers: Tuple[dict, ...] = ()
    forward_s = backward_s = 0.0
    if profile_path is not None:
        profile = ProfileReport.load(profile_path)
        hot_layers = tuple(row.to_dict() for row in profile.top_layers(5))
        forward_s, backward_s = profile.forward_s, profile.backward_s
        sources["profile"] = str(profile_path)

    return RunReport(
        runs=tuple(summaries),
        stages=stages,
        incidents=incidents,
        unknown_events=unknown,
        workers=tuple(workers),
        worker_skew=skew,
        counters=counters,
        hot_layers=hot_layers,
        profile_forward_s=forward_s,
        profile_backward_s=backward_s,
        sources=sources,
        serving=serving,
        sweep=sweep,
        ilt=ilt,
    )
