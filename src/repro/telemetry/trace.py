"""Span tracing: nested wall-clock measurement of pipeline phases.

A :class:`Tracer` hands out context-manager :class:`Span`\\ s.  Spans nest
(the tracer keeps an active stack, so each finished record knows its depth
and parent), carry arbitrary metadata, and accumulate into per-name totals —
which is exactly the accounting the Table 4 runtime comparison needs, so the
historical :class:`StageTimer` API is now a thin veneer over a ``Tracer`` and
is re-exported unchanged from :mod:`repro.sim.runtime`.

Since the observability-plane PR, every span also carries **stable
identifiers**: a ``trace_id`` naming the whole run's trace, a ``span_id``
unique within it, and a ``parent_id`` linking child to parent.  IDs are
allocated from per-tracer counters inside a namespace (``main`` for the
parent process, ``w<shard>`` inside a :class:`~repro.runtime.parallel.
WorkerPool` worker), so a trace merged from many workers is collision-free
and **deterministic in structure**: the same work yields the same span tree
regardless of backend or completion order.  :meth:`Tracer.current_context`
exports the active position as a :class:`TraceContext`; a worker-side tracer
built from that context parents its root spans under the dispatching
``parallel_shard`` span, and :meth:`Tracer.absorb` folds the worker's
serialized records back into the parent.

The **active tracer** (:func:`activate_tracer` / :func:`get_active_tracer`)
is a thread-local ambient slot the worker pool populates before running a
shard, so picklable worker functions can reach their shard's tracer without
threading it through every payload.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

#: process-wide monotonic trace-ID source (PID-salted like run IDs, so
#: traces from several processes appending to one artifact stay distinct)
_TRACE_COUNTER = itertools.count(1)


def next_trace_id() -> str:
    """A new process-unique trace identifier."""
    return f"trace-{os.getpid()}-{next(_TRACE_COUNTER):04d}"


@dataclass(frozen=True)
class TraceContext:
    """The wire form of "where in the trace am I": what a worker inherits."""

    trace_id: str
    parent_span_id: Optional[str] = None

    def to_tuple(self) -> Tuple[str, Optional[str]]:
        return (self.trace_id, self.parent_span_id)


@dataclass
class SpanRecord:
    """One finished span, in completion order."""

    name: str
    seconds: float
    depth: int
    parent: Optional[str]
    metadata: Dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: Optional[str] = None
    start_unix: float = 0.0
    origin: str = "main"

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "seconds": self.seconds,
            "depth": self.depth,
            "parent": self.parent,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "origin": self.origin,
        }
        if self.metadata:
            record["metadata"] = dict(self.metadata)
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            seconds=float(data["seconds"]),
            depth=int(data.get("depth", 0)),
            parent=data.get("parent"),
            metadata=dict(data.get("metadata", {})),
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id"),
            start_unix=float(data.get("start_unix", 0.0)),
            origin=data.get("origin", "main"),
        )


class Span:
    """Live handle yielded by :meth:`Tracer.span`; annotate via :meth:`note`."""

    __slots__ = ("name", "metadata", "span_id", "_start", "_start_unix")

    def __init__(self, name: str, metadata: Dict[str, Any],
                 span_id: str = "") -> None:
        self.name = name
        self.metadata = metadata
        self.span_id = span_id
        self._start = 0.0
        self._start_unix = 0.0

    def note(self, **metadata: Any) -> None:
        """Attach metadata to the span while it is running."""
        self.metadata.update(metadata)


class Tracer:
    """Collects finished :class:`SpanRecord`\\ s and per-name aggregates.

    ``trace_id`` defaults to a fresh process-unique ID; pass the parent's to
    join an existing trace.  ``origin`` labels where the spans ran (``main``,
    ``w3``, ...) and doubles as the span-ID namespace unless ``id_namespace``
    overrides it (the worker pool namespaces by dispatch *and* shard so
    repeated fan-outs never reuse an ID).  ``root_parent_id`` parents
    top-of-stack spans under a span of another tracer — how worker spans nest
    under the dispatching ``parallel_shard`` span after a merge.
    """

    def __init__(self, trace_id: Optional[str] = None, *,
                 origin: str = "main",
                 id_namespace: Optional[str] = None,
                 root_parent_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id is not None else next_trace_id()
        self.origin = origin
        self._namespace = id_namespace if id_namespace is not None else origin
        self._root_parent_id = root_parent_id
        self._ids = itertools.count(1)
        self._records: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    # -- identifiers --------------------------------------------------------

    def reserve_span_id(self) -> str:
        """Allocate the next span ID without opening a span.

        The worker pool reserves the ``parallel_shard`` span's ID at dispatch
        so the worker can parent its spans under it before the shard record
        itself is written (the record is only timed once the result returns).
        """
        return f"{self._namespace}-{next(self._ids):04d}"

    def current_context(self) -> TraceContext:
        """The active trace position, for propagation into workers."""
        parent = (self._stack[-1].span_id if self._stack
                  else self._root_parent_id)
        return TraceContext(trace_id=self.trace_id, parent_span_id=parent)

    # -- span collection ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **metadata: Any) -> Iterator[Span]:
        handle = Span(name, dict(metadata), span_id=self.reserve_span_id())
        parent = self._stack[-1] if self._stack else None
        parent_name = parent.name if parent is not None else None
        parent_id = (parent.span_id if parent is not None
                     else self._root_parent_id)
        depth = len(self._stack)
        self._stack.append(handle)
        handle._start_unix = time.time()
        handle._start = time.perf_counter()
        try:
            yield handle
        finally:
            elapsed = time.perf_counter() - handle._start
            self._stack.pop()
            self._append(SpanRecord(
                name=name, seconds=elapsed, depth=depth,
                parent=parent_name, metadata=handle.metadata,
                trace_id=self.trace_id, span_id=handle.span_id,
                parent_id=parent_id, start_unix=handle._start_unix,
                origin=self.origin,
            ))

    def add_record(self, name: str, seconds: float, *,
                   span_id: Optional[str] = None,
                   start_unix: Optional[float] = None,
                   **metadata: Any) -> SpanRecord:
        """Record an externally timed span without sampling the clock twice.

        For latencies assembled from parts (e.g. a served clip's share of a
        batched forward pass plus its own post-processing) that still belong
        in the same per-name aggregates as context-manager spans.
        ``span_id`` accepts an ID previously taken from
        :meth:`reserve_span_id` (the worker-pool dispatch protocol); the
        default allocates a fresh one.
        """
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name, seconds=float(seconds), depth=len(self._stack),
            parent=parent.name if parent is not None else None,
            metadata=dict(metadata),
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else self.reserve_span_id(),
            parent_id=(parent.span_id if parent is not None
                       else self._root_parent_id),
            start_unix=(start_unix if start_unix is not None
                        else time.time() - float(seconds)),
            origin=self.origin,
        )
        self._append(record)
        return record

    def _append(self, record: SpanRecord) -> None:
        self._records.append(record)
        self._totals[record.name] = (
            self._totals.get(record.name, 0.0) + record.seconds
        )
        self._counts[record.name] = self._counts.get(record.name, 0) + 1

    # -- aggregates ---------------------------------------------------------

    @property
    def records(self) -> Tuple[SpanRecord, ...]:
        return tuple(self._records)

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        count = self._counts.get(name, 0)
        return self._totals[name] / count if count else 0.0

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's finished spans into this one."""
        for record in other._records:
            self._append(record)

    def absorb(self, records: Iterable[dict]) -> None:
        """Fold serialized :class:`SpanRecord` dicts (a worker's spans) in.

        Records keep the IDs and timestamps they were written with — the
        worker already namespaced them and parented its roots under the
        dispatching span, so absorption is pure concatenation plus aggregate
        bookkeeping, deterministic in shard order.
        """
        for data in records:
            self._append(SpanRecord.from_dict(data))

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "spans": [record.to_dict() for record in self._records],
            "totals": self.totals(),
            "counts": dict(self._counts),
        }

    def record_into(self, registry: MetricsRegistry,
                    histogram: str = "stage_seconds",
                    counter: str = "stages_total",
                    label: str = "stage") -> None:
        """Export finished spans as labeled latency histograms + counters."""
        for record in self._records:
            labels = {label: record.name}
            registry.histogram(histogram, labels=labels).observe(record.seconds)
            registry.counter(counter, labels=labels).inc()


# ---------------------------------------------------------------------------
# Ambient (thread-local) tracer for worker shards
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


def activate_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as this thread's ambient tracer; returns the old one.

    The worker pool activates a shard-local tracer around each shard so
    worker functions (which must stay picklable, payload-only callables) can
    reach it via :func:`get_active_tracer`.  Always restore the returned
    previous value with a second :func:`activate_tracer` call in ``finally``.
    """
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    return previous


def get_active_tracer() -> Optional[Tracer]:
    """This thread's ambient tracer, or None outside an instrumented shard."""
    return getattr(_ACTIVE, "tracer", None)


class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage.

    Historically a standalone dict-of-totals; now backed by a :class:`Tracer`
    so Table 4 accounting and span tracing share one measurement substrate.
    The public API is unchanged from the original.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        with self.tracer.span(name):
            yield

    def total(self, name: str) -> float:
        return self.tracer.total(name)

    def count(self, name: str) -> int:
        return self.tracer.count(name)

    def mean(self, name: str) -> float:
        return self.tracer.mean(name)

    def as_dict(self) -> Dict[str, float]:
        return self.tracer.totals()

    def merge(self, other: "StageTimer") -> None:
        self.tracer.merge(other.tracer)
