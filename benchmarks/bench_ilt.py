"""Inverse-lithography benchmark: learned-proxy ILT vs. rule-based OPC.

Runs :func:`repro.api.optimize_mask` with the session-trained reduced-scale
LithoGAN as the differentiable forward proxy over a deterministic set of
contact clips, then records ``BENCH_ilt.json``: the mean edge-placement
error of the verified best masks against both baselines (the drawn mask
with no RET, and the rule-based SRAF+OPC mask), plus per-clip records and
a two-run determinism digest.

The tracked invariants are host-independent:

* every reported mask is simulator-verified (never the proxy alone);
* mean EPE is strictly below the unoptimized baseline and no worse than
  rule OPC (the descent starts *from* the rule-OPC mask, so ties are the
  floor, not a regression);
* two same-seed runs produce byte-identical summaries.

Environment knobs for constrained runners:

* ``REPRO_BENCH_ILT_CLIPS`` — clips to optimize (default 3)
* ``REPRO_BENCH_ILT_STEPS`` — gradient steps per clip (default 20)
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
from conftest import write_artifact

from repro import api
from repro.config import IltConfig
from repro.layout import generate_clips
from repro.telemetry import build_fingerprint

ILT_CLIPS = int(os.environ.get("REPRO_BENCH_ILT_CLIPS", 3))
ILT_STEPS = int(os.environ.get("REPRO_BENCH_ILT_STEPS", 20))


def test_ilt_beats_rule_opc(bundle_n10, artifact_dir):
    config = dataclasses.replace(
        bundle_n10.config,
        ilt=IltConfig(steps=ILT_STEPS, verify_every=5),
    )
    clips = generate_clips(
        config.tech, np.random.default_rng(config.training.seed),
        count=ILT_CLIPS,
    )

    result = api.optimize_mask(config, bundle_n10.lithogan, clips=clips)
    repeat = api.optimize_mask(config, bundle_n10.lithogan, clips=clips)

    # Every reported mask passed rigorous re-simulation.
    assert all(o.best.printed for o in result.outcomes)
    # The headline claim: learned-proxy ILT beats both baselines.
    assert result.improved_vs_unoptimized, (
        f"ILT EPE {result.epe_ilt_nm:.3f} nm did not beat the unoptimized "
        f"mask at {result.epe_unoptimized_nm:.3f} nm"
    )
    assert result.improved_vs_rule_opc, (
        f"ILT EPE {result.epe_ilt_nm:.3f} nm regressed from rule OPC at "
        f"{result.epe_rule_opc_nm:.3f} nm"
    )
    # Bit-reproducible: the descent draws no randomness.
    deterministic = result.to_json() == repeat.to_json()
    assert deterministic

    lines = [
        f"ilt: {result.clips} clips x {ILT_STEPS} steps, "
        f"{result.verifications} simulator verifications",
        f"  mean EPE  ilt {result.epe_ilt_nm:.3f} nm | "
        f"rule OPC {result.epe_rule_opc_nm:.3f} nm | "
        f"unoptimized {result.epe_unoptimized_nm:.3f} nm",
        f"  improved clips: "
        f"{sum(o.improved_vs_unoptimized for o in result.outcomes)}"
        f"/{result.clips} vs unoptimized, "
        f"{sum(o.improved_vs_rule_opc for o in result.outcomes)}"
        f"/{result.clips} vs rule OPC",
        f"  deterministic across two runs: {deterministic}",
    ]
    write_artifact(artifact_dir, "ilt_comparison.txt", lines)

    payload = result.summary()
    payload["schema_version"] = 1
    payload["build"] = build_fingerprint()
    payload["deterministic"] = deterministic
    (artifact_dir / "BENCH_ilt.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
