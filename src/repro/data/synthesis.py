"""Benchmark-dataset synthesis.

Stands in for the paper's proprietary N10/N7 datasets: clips are drawn from
the three contact-array families, pushed through the RET flow (SRAF + OPC)
and the rigorous simulation pipeline, then encoded into the Section 3.1
image pairs.  Deterministic given the config's seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ExperimentConfig
from ..errors import DataError, ResistError
from ..layout import ArrayType, generate_clip, render_mask_rgb
from ..sim import LithographySimulator
from ..telemetry.trace import Tracer
from .dataset import PairedDataset
from .encoding import bbox_center_rc


def synthesize_dataset(config: ExperimentConfig,
                       rng: Optional[np.random.Generator] = None,
                       resist_model: str = "vtr",
                       model_based_opc: bool = False,
                       tracer: Optional[Tracer] = None) -> PairedDataset:
    """Mint a full paired dataset for one technology node.

    Clips whose target contact fails to print (possible for extreme random
    neighborhoods) are skipped and replaced, so the returned dataset always
    has ``config.tech.num_clips`` samples.

    ``tracer`` (optional) collects the simulator's per-stage spans
    (rasterize/optical/resist/contour) across the whole mint.
    """
    if rng is None:
        rng = np.random.default_rng(config.training.seed)
    simulator = LithographySimulator(
        config, resist_model=resist_model, tracer=tracer
    )

    count = config.tech.num_clips
    image_px = config.image.mask_image_px
    masks = np.empty((count, 3, image_px, image_px), dtype=np.float32)
    resists = np.empty(
        (count, 1, config.image.resist_image_px, config.image.resist_image_px),
        dtype=np.float32,
    )
    centers = np.empty((count, 2), dtype=np.float32)
    array_types = np.empty(count, dtype=object)

    types = list(ArrayType)
    produced = 0
    attempts = 0
    max_attempts = count * 4
    while produced < count:
        if attempts >= max_attempts:
            raise DataError(
                f"dataset synthesis stalled: {produced}/{count} clips after "
                f"{attempts} attempts (resist keeps failing to print)"
            )
        array_type = types[attempts % len(types)]
        attempts += 1
        clip = generate_clip(config.tech, rng, array_type=array_type)
        try:
            result = simulator.simulate_clip(
                clip, model_based_opc=model_based_opc
            )
        except ResistError:
            continue
        masks[produced] = render_mask_rgb(result.layout, image_px)
        resists[produced, 0] = result.golden_window
        centers[produced] = bbox_center_rc(result.golden_window)
        array_types[produced] = array_type.value
        produced += 1

    return PairedDataset(
        masks, resists, centers, array_types.astype(str),
        tech_name=config.tech.name,
    )
