"""Figure 8: prediction quality across training epochs.

The paper shows generator outputs for two test clips after 1, 3, 5, 7, 15,
27, 50, and 80 epochs, progressively sharpening toward the golden pattern.
The training fixture records snapshots at the same epochs (clipped to the
benchmark's epoch budget); this bench renders them and asserts the L1
distance to golden decreases from the first to the last snapshot.
"""

from __future__ import annotations

import numpy as np
from conftest import write_artifact

from repro.data import recenter_pattern
from repro.eval import ascii_pattern, figure8_progression, side_by_side


def test_figure8(bundle_n10, artifact_dir, benchmark):
    history = bundle_n10.lithogan_history.cgan
    # Snapshot inputs were the first 4 test masks; the CGAN path of LithoGAN
    # trains on re-centered golden patterns, so compare against those.
    golden_windows = bundle_n10.test.resists[:4]
    recentered = np.stack(
        [recenter_pattern(golden_windows[i, 0])[0][None] for i in range(4)]
    )

    entries = figure8_progression(history, recentered)
    lines = [
        f"snapshot epochs: {[entry.epoch for entry in entries]}",
        "",
    ]
    for sample in range(2):
        blocks = [
            ascii_pattern(
                np.clip(entry.predictions[sample].mean(axis=0), 0, 1),
                width=20,
            )
            for entry in entries
        ]
        labels = [f"ep{entry.epoch}" for entry in entries]
        blocks.append(ascii_pattern(recentered[sample, 0], width=20))
        labels.append("golden")
        lines.append(f"--- test clip {sample} ---")
        lines.extend(side_by_side(blocks, labels))
        lines.append("")
    lines.append(
        "L1 to golden per epoch: "
        + ", ".join(
            f"ep{entry.epoch}={entry.l1_to_golden:.3f}" for entry in entries
        )
    )
    write_artifact(artifact_dir, "figure8.txt", lines)

    assert entries[-1].l1_to_golden < entries[0].l1_to_golden, (
        "predictions must get closer to golden as training progresses"
    )

    benchmark(figure8_progression, history, recentered)
