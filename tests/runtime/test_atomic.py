"""Atomic persistence: torn writes must be impossible."""

import os

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.runtime.atomic import (
    atomic_savez,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicBytes:
    def test_roundtrip(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "blob.bin", b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a" / "b" / "c.bin", b"x")
        assert path.read_bytes() == b"x"

    def test_no_temp_leftover(self, tmp_path):
        atomic_write_bytes(tmp_path / "blob.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_failed_replace_keeps_original(self, tmp_path, monkeypatch):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"original")

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(CheckpointError, match="blob.bin"):
            atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]


class TestAtomicTextJson:
    def test_text_roundtrip(self, tmp_path):
        path = atomic_write_text(tmp_path / "note.txt", "héllo")
        assert path.read_text("utf-8") == "héllo"

    def test_json_roundtrip(self, tmp_path):
        import json

        path = atomic_write_json(tmp_path / "m.json", {"a": [1, 2]})
        assert json.loads(path.read_text("utf-8")) == {"a": [1, 2]}

    def test_unserializable_payload_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="JSON"):
            atomic_write_json(tmp_path / "m.json", {"bad": object()})
        assert not (tmp_path / "m.json").exists()


class TestAtomicSavez:
    def test_roundtrip(self, tmp_path):
        arrays = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = atomic_savez(tmp_path / "state.npz", arrays)
        with np.load(path) as data:
            assert sorted(data.files) == ["b", "w"]
            assert np.array_equal(data["w"], arrays["w"])

    def test_exact_path_no_suffix_magic(self, tmp_path):
        path = atomic_savez(tmp_path / "state.ckpt", {"x": np.ones(1)})
        assert path.name == "state.ckpt"
        assert path.exists()

    def test_no_temp_leftover(self, tmp_path):
        atomic_savez(tmp_path / "state.npz", {"x": np.ones(1)})
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]

    def test_failed_replace_keeps_original(self, tmp_path, monkeypatch):
        path = tmp_path / "state.npz"
        atomic_savez(path, {"x": np.zeros(2)})
        before = path.read_bytes()

        def boom(src, dst):
            raise OSError("quota")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(CheckpointError, match="state.npz"):
            atomic_savez(path, {"x": np.ones(2)})
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]
