"""Dependency-free observability: metrics, span tracing, run logs, hooks.

The measurement substrate behind the Table 4 runtime accounting and every
future performance claim.  Four pieces:

``repro.telemetry.metrics``
    ``Counter`` / ``Gauge`` / ``Histogram`` and the labeled
    :class:`MetricsRegistry` with JSON export.
``repro.telemetry.trace``
    Nested context-manager :class:`Span` tracing via :class:`Tracer`;
    backs the re-exported :class:`~repro.sim.runtime.StageTimer`.
``repro.telemetry.events``
    Schema-versioned JSONL :class:`RunLogger` (crash-tolerant, incremental).
``repro.telemetry.hooks``
    The :class:`TelemetryHook` callback protocol threaded through training.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import Span, SpanRecord, StageTimer, Tracer
from .events import (
    BREAKER_STATES,
    BREAKER_TRANSITIONS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    RunLogger,
    next_run_id,
    read_run_log,
    split_runs,
    validate_run_log,
)
from .hooks import NULL_HOOK, CompositeHook, RunLoggerHook, TelemetryHook

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "SpanRecord",
    "StageTimer",
    "Tracer",
    "BREAKER_STATES",
    "BREAKER_TRANSITIONS",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "RunLogger",
    "next_run_id",
    "read_run_log",
    "split_runs",
    "validate_run_log",
    "NULL_HOOK",
    "CompositeHook",
    "RunLoggerHook",
    "TelemetryHook",
]
