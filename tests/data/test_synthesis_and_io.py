"""Dataset minting and persistence."""

import numpy as np
import pytest

from repro.config import N10, tiny
from repro.data import load_dataset, save_dataset, synthesize_dataset
from repro.errors import DataError


class TestSynthesis:
    def test_tiny_dataset_shapes(self, tiny_config, tiny_dataset):
        px = tiny_config.image.mask_image_px
        assert len(tiny_dataset) == tiny_config.tech.num_clips
        assert tiny_dataset.masks.shape == (len(tiny_dataset), 3, px, px)
        assert tiny_dataset.resists.shape == (len(tiny_dataset), 1, px, px)
        assert tiny_dataset.tech_name == "N10"

    def test_every_golden_pattern_nonempty(self, tiny_dataset):
        assert all(
            tiny_dataset.resists[i].sum() > 0 for i in range(len(tiny_dataset))
        )

    def test_array_types_balanced(self, tiny_dataset):
        values, counts = np.unique(tiny_dataset.array_types, return_counts=True)
        assert set(values) == {"isolated", "dense_grid", "staggered"}
        assert counts.max() - counts.min() <= 1

    def test_deterministic_given_seed(self, tiny_config):
        a = synthesize_dataset(tiny_config)
        b = synthesize_dataset(tiny_config)
        assert np.array_equal(a.masks, b.masks)
        assert np.array_equal(a.resists, b.resists)

    def test_different_seed_differs(self, tiny_config, tiny_dataset):
        other = synthesize_dataset(
            tiny_config, rng=np.random.default_rng(999)
        )
        assert not np.array_equal(other.masks, tiny_dataset.masks)

    def test_mask_channels_consistent_with_encoding(self, tiny_dataset):
        # Green (target) must be present in every clip; blue (SRAFs) in most.
        green = tiny_dataset.masks[:, 1].sum(axis=(1, 2))
        assert np.all(green > 0)


class TestIo:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        assert np.array_equal(loaded.masks, tiny_dataset.masks)
        assert np.array_equal(loaded.resists, tiny_dataset.resists)
        assert np.array_equal(loaded.centers, tiny_dataset.centers)
        assert list(loaded.array_types) == list(tiny_dataset.array_types)
        assert loaded.tech_name == tiny_dataset.tech_name

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset(tmp_path / "absent.npz")

    def test_non_dataset_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DataError):
            load_dataset(path)

    def test_truncated_archive_fails_closed(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(DataError, match="unreadable"):
            load_dataset(path)

    def test_corrupt_archive_names_the_path(self, tiny_dataset, tmp_path):
        from repro.runtime.faults import FaultPlan

        path = save_dataset(tiny_dataset, tmp_path / "ds")
        FaultPlan.corrupt_file(path, seed=2)
        with pytest.raises(DataError, match=str(path)):
            load_dataset(path)

    def test_save_is_atomic_leaves_no_temp(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path / "ds")
        assert [p.name for p in tmp_path.iterdir()] == ["ds.npz"]
