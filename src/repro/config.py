"""Configuration objects and named presets for the LithoGAN reproduction.

Every experiment in the paper is described by an :class:`ExperimentConfig`,
which bundles the technology node, the optical and resist models used to mint
golden data, the image-encoding geometry of Section 3.1, the network
architecture of Tables 1--2, and the training hyper-parameters of Section 4.

Three preset families are provided:

``paper_n10()`` / ``paper_n7()``
    The exact paper-scale setup (256x256 images, base width 64, 80 epochs,
    982/979 clips).  Constructible and shape-tested everywhere, but far too
    slow to *train* on CPU in CI.

``reduced()``
    The default for the benchmark harness: identical code paths at 64x64
    images and base width 16 so a full train/evaluate cycle finishes in
    minutes on a laptop CPU.

``tiny()``
    Unit-test scale (32x32, handful of clips, 1-2 epochs).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .errors import ConfigError

# ---------------------------------------------------------------------------
# Optical model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpticalConfig:
    """Partially-coherent scalar imaging model parameters.

    The defaults describe a 193 nm immersion scanner with annular
    illumination, the workhorse for contact layers at N10/N7.
    """

    wavelength_nm: float = 193.0
    numerical_aperture: float = 1.35
    sigma_inner: float = 0.60
    sigma_outer: float = 0.90
    defocus_nm: float = 0.0
    #: number of SOCS kernels retained from the TCC eigendecomposition
    num_kernels: int = 8
    #: simulation grid resolution (pixels across the cropped clip)
    grid_size: int = 64

    def __post_init__(self) -> None:
        if self.wavelength_nm <= 0:
            raise ConfigError(f"wavelength must be positive, got {self.wavelength_nm}")
        if not 0 < self.numerical_aperture:
            raise ConfigError(f"NA must be positive, got {self.numerical_aperture}")
        if not 0 <= self.sigma_inner < self.sigma_outer <= 1.0 + 1e-9:
            raise ConfigError(
                "annular source requires 0 <= sigma_inner < sigma_outer <= 1, "
                f"got ({self.sigma_inner}, {self.sigma_outer})"
            )
        if self.num_kernels < 1:
            raise ConfigError(f"num_kernels must be >= 1, got {self.num_kernels}")
        if self.grid_size < 8:
            raise ConfigError(f"grid_size must be >= 8, got {self.grid_size}")


# ---------------------------------------------------------------------------
# Resist model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResistConfig:
    """Resist development model parameters.

    ``base_threshold`` is the nominal constant intensity threshold; the
    variable-threshold model perturbs it from local aerial-image statistics
    (Imax/Imin/slope), following the VTR family the paper cites [9].
    """

    base_threshold: float = 0.22
    diffusion_length_nm: float = 8.0
    #: VTR sensitivity coefficients: threshold = base + a*(Imax-c) + b*(Imin-d)
    vtr_imax_coeff: float = 0.08
    vtr_imin_coeff: float = -0.12
    vtr_slope_coeff: float = 0.02
    vtr_imax_ref: float = 1.0
    vtr_imin_ref: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.base_threshold < 1:
            raise ConfigError(
                f"base_threshold must lie in (0, 1), got {self.base_threshold}"
            )
        if self.diffusion_length_nm < 0:
            raise ConfigError(
                f"diffusion_length_nm must be >= 0, got {self.diffusion_length_nm}"
            )


# ---------------------------------------------------------------------------
# Technology node / layout synthesis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TechnologyConfig:
    """Technology-node description used by the layout synthesizer.

    Matches the paper's data preparation (Section 3.1): clips are originally
    2x2 um, cropped to 1x1 um around the target contact; the drawn target
    contact is 60x60 nm.
    """

    name: str
    #: drawn contact edge length in nm (the paper uses 60 nm for both nodes)
    contact_size_nm: float
    #: minimum center-to-center contact pitch in nm
    pitch_nm: float
    #: number of clips in the benchmark (982 for N10, 979 for N7)
    num_clips: int
    clip_size_nm: float = 2000.0
    cropped_clip_nm: float = 1000.0
    #: golden resist crop window around the target contact (Section 3.1)
    resist_window_nm: float = 128.0
    #: 1-sigma mask registration (pattern-placement) error per axis, nm.
    #: Every drawn feature lands on the reticle with this much jitter; the
    #: resist window stays anchored at the *ideal* target position, so the
    #: printed pattern's center inherits the jitter — the displacement the
    #: LithoGAN center CNN learns to predict.
    registration_sigma_nm: float = 3.0

    def __post_init__(self) -> None:
        if self.contact_size_nm <= 0:
            raise ConfigError("contact_size_nm must be positive")
        if self.registration_sigma_nm < 0:
            raise ConfigError("registration_sigma_nm must be >= 0")
        if self.pitch_nm <= self.contact_size_nm:
            raise ConfigError(
                f"pitch ({self.pitch_nm}) must exceed contact size "
                f"({self.contact_size_nm})"
            )
        if self.cropped_clip_nm > self.clip_size_nm:
            raise ConfigError("cropped clip cannot exceed the original clip")
        if self.resist_window_nm <= self.contact_size_nm:
            raise ConfigError(
                "resist window must be larger than the contact itself"
            )
        if self.num_clips < 1:
            raise ConfigError("num_clips must be >= 1")

    @property
    def half_pitch_nm(self) -> float:
        """Contact half-pitch; 10% of this is the paper's CD error budget."""
        return self.pitch_nm / 2.0


# ---------------------------------------------------------------------------
# Image encoding (Section 3.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImageConfig:
    """Pixel geometry of the paired training images.

    The paper renders the 1x1 um cropped mask clip to a 256x256 RGB image and
    the 128x128 nm golden resist window to a 256x256 monochrome image (so one
    mispredicted pixel costs ~0.5 nm of contour error).
    """

    mask_image_px: int = 256
    resist_image_px: int = 256

    def __post_init__(self) -> None:
        for name in ("mask_image_px", "resist_image_px"):
            value = getattr(self, name)
            if value < 8 or value & (value - 1):
                raise ConfigError(f"{name} must be a power of two >= 8, got {value}")

    def mask_nm_per_px(self, tech: TechnologyConfig) -> float:
        return tech.cropped_clip_nm / self.mask_image_px

    def resist_nm_per_px(self, tech: TechnologyConfig) -> float:
        return tech.resist_window_nm / self.resist_image_px


# ---------------------------------------------------------------------------
# Network architecture (Tables 1 and 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelConfig:
    """Parametric description of the Table 1 / Table 2 architectures.

    At ``image_size=256`` and ``base_filters=64`` the generated layer stacks
    match the paper's tables exactly (verified by unit test); smaller sizes
    shrink depth/width while preserving the topology.
    """

    image_size: int = 256
    mask_channels: int = 3
    resist_channels: int = 3
    base_filters: int = 64
    #: channel progression cap: widths are min(base * 2**i, base * cap_mult)
    cap_mult: int = 8
    kernel_size: int = 5
    #: number of decoder layers that get dropout (the paper uses 2)
    decoder_dropout_layers: int = 2
    dropout_rate: float = 0.5
    #: dropout rate of the auxiliary regression CNNs (Table 2 includes the
    #: layer but not its rate; heavy dropout prevents the small-data
    #: regression from fitting at reduced scale, so presets lower it)
    aux_dropout_rate: float = 0.5
    leaky_slope: float = 0.2
    #: center-CNN widths (Table 2)
    center_first_filters: int = 32
    center_filters: int = 64
    center_fc_units: int = 64

    def __post_init__(self) -> None:
        if self.image_size < 8 or self.image_size & (self.image_size - 1):
            raise ConfigError(
                f"image_size must be a power of two >= 8, got {self.image_size}"
            )
        if self.base_filters < 1:
            raise ConfigError("base_filters must be >= 1")
        if not 0 <= self.dropout_rate < 1:
            raise ConfigError("dropout_rate must lie in [0, 1)")
        if not 0 <= self.aux_dropout_rate < 1:
            raise ConfigError("aux_dropout_rate must lie in [0, 1)")

    @property
    def num_downsamples(self) -> int:
        """Stride-2 encoder stages needed to reach a 1x1 bottleneck."""
        return int(math.log2(self.image_size))

    def encoder_widths(self) -> Tuple[int, ...]:
        cap = self.base_filters * self.cap_mult
        return tuple(
            min(self.base_filters * (2**i), cap) for i in range(self.num_downsamples)
        )

    def decoder_widths(self) -> Tuple[int, ...]:
        """Widths of the decoder deconvs, excluding the final output layer."""
        return tuple(reversed(self.encoder_widths()))[1:]


# ---------------------------------------------------------------------------
# Training (Section 4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters from Section 4 of the paper."""

    epochs: int = 80
    batch_size: int = 4
    learning_rate: float = 2e-4
    adam_beta1: float = 0.5
    adam_beta2: float = 0.999
    lambda_l1: float = 100.0
    train_fraction: float = 0.75
    seed: int = 0
    #: expand the training set with dihedral-4 transforms before fitting
    augment: bool = False
    #: epochs for the auxiliary regressors (center CNN, threshold CNN); they
    #: are far cheaper per epoch than the CGAN, so they get more of them
    aux_epochs: int = 80
    #: epochs at which Figure 8 snapshots are taken (subset actually used)
    snapshot_epochs: Tuple[int, ...] = (1, 3, 5, 7, 15, 27, 50, 80)

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0 < self.train_fraction < 1:
            raise ConfigError("train_fraction must lie in (0, 1)")
        if self.aux_epochs < 1:
            raise ConfigError("aux_epochs must be >= 1")
        if not 0 <= self.adam_beta1 < 1 or not 0 <= self.adam_beta2 < 1:
            raise ConfigError("Adam betas must lie in [0, 1)")


# ---------------------------------------------------------------------------
# Fault tolerance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryConfig:
    """Fault-tolerance knobs: checkpoint cadence/retention and divergence
    recovery.

    ``checkpoint_every`` sets the epoch cadence of on-disk snapshots;
    retention keeps the last ``keep_last`` checkpoints plus (with
    ``keep_best``) the lowest-loss one.  When training hits a non-finite
    loss, the :class:`~repro.runtime.RecoveryPolicy` rolls back to the last
    good state, multiplies the learning rate by ``lr_backoff`` (never below
    ``min_learning_rate``), and retries up to ``max_retries`` consecutive
    times before giving up.
    """

    checkpoint_every: int = 1
    keep_last: int = 3
    keep_best: bool = True
    max_retries: int = 2
    lr_backoff: float = 0.5
    min_learning_rate: float = 1e-7

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0 < self.lr_backoff <= 1:
            raise ConfigError(
                f"lr_backoff must lie in (0, 1], got {self.lr_backoff}"
            )
        if self.min_learning_rate <= 0:
            raise ConfigError(
                "min_learning_rate must be positive, got "
                f"{self.min_learning_rate}"
            )


# ---------------------------------------------------------------------------
# Data integrity
# ---------------------------------------------------------------------------

#: load-time dataset policies, in increasing order of intervention
DATA_POLICY_NONE = "none"
DATA_POLICY_STRICT = "strict"
DATA_POLICY_SALVAGE = "salvage"
DATA_POLICY_REPAIR = "repair"
DATA_POLICIES = (
    DATA_POLICY_NONE, DATA_POLICY_STRICT, DATA_POLICY_SALVAGE,
    DATA_POLICY_REPAIR,
)


@dataclass(frozen=True)
class DataIntegrityConfig:
    """Self-healing data-layer knobs: manifests, validation, quarantine.

    ``write_manifest`` controls whether :func:`~repro.data.save_dataset`
    emits the per-record integrity sidecar.  ``policy`` is the default
    load-time posture (the CLI's ``--data-policy`` flag wins): ``none``
    loads unvalidated, ``strict`` fails closed on the first bad record,
    ``salvage`` quarantines bad records and proceeds with the verified
    subset, ``repair`` re-synthesizes quarantined records from manifest
    provenance.  ``center_tolerance_px`` bounds how far a stored center
    label may drift from the recomputed bounding-box center of its golden
    window before the record is flagged; the geometric plausibility bounds
    themselves are shared with serving (see
    :class:`~repro.serving.GeometryBounds`).
    """

    write_manifest: bool = True
    policy: str = DATA_POLICY_NONE
    center_tolerance_px: float = 1.0
    #: records a salvage pass must leave behind for training to proceed
    min_salvaged_records: int = 2

    def __post_init__(self) -> None:
        if self.policy not in DATA_POLICIES:
            raise ConfigError(
                f"data policy must be one of {DATA_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.center_tolerance_px <= 0:
            raise ConfigError(
                "center_tolerance_px must be positive, got "
                f"{self.center_tolerance_px}"
            )
        if self.min_salvaged_records < 1:
            raise ConfigError(
                "min_salvaged_records must be >= 1, got "
                f"{self.min_salvaged_records}"
            )


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------

#: worker-pool backends: ``auto`` resolves to ``serial`` for one worker and
#: ``process`` otherwise; ``thread`` exists for shared-memory fan-outs
#: (serving) where pickling the model would dominate.
PARALLEL_BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """Deterministic fan-out knobs: worker count, backend, kernel cache.

    ``workers`` is the default fan-out width for synthesis/repair/serving
    (the CLI's ``--workers`` flag wins).  ``backend`` selects the
    :class:`~repro.runtime.parallel.WorkerPool` execution strategy;
    ``chunk_size`` caps how many items one shard carries (``None`` =
    near-even split across workers).  ``timeout_s`` bounds how long the
    parent waits on any single shard before converting the stall into a
    :class:`~repro.errors.ParallelError` (never a hang).

    The kernel-cache fields govern the content-addressed on-disk cache of
    TCC/SOCS decompositions (see :mod:`repro.optics.cache`):
    ``kernel_cache`` switches it off entirely, ``kernel_cache_dir``
    overrides the default location (``$REPRO_KERNEL_CACHE_DIR`` or
    ``~/.cache/repro-litho/kernels``), and ``kernel_cache_entries`` bounds
    retention (oldest entries beyond the bound are evicted on store).
    """

    workers: int = 1
    backend: str = "auto"
    chunk_size: Optional[int] = None
    timeout_s: float = 300.0
    kernel_cache: bool = True
    kernel_cache_dir: Optional[str] = None
    kernel_cache_entries: int = 32

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"backend must be one of {PARALLEL_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.timeout_s <= 0:
            raise ConfigError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.kernel_cache_entries < 1:
            raise ConfigError(
                "kernel_cache_entries must be >= 1, got "
                f"{self.kernel_cache_entries}"
            )


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingConfig:
    """Hardened-inference knobs: admission, output guards, degradation.

    The guard bounds are *ratios against the technology node*: a generated
    resist window is plausible when its area lies within
    ``[min_area_ratio, max_area_ratio]`` times the drawn contact area and its
    bounding-box CD within ``[min_cd_ratio, max_cd_ratio]`` times the drawn
    contact size (both converted to pixels through the image geometry), its
    bounding-box center lands within ``center_tolerance_px`` of the
    CNN-predicted center, and it consists of at most ``max_components``
    connected components.  Deliberately permissive: the guard exists to catch
    *degenerate* GAN outputs (empty, shattered, absurdly sized, misplaced),
    not mild blur — golden simulator windows must always pass.

    ``queue_capacity`` bounds how many admitted clips one batch may carry
    (backpressure: overflow clips are rejected with ``overload``);
    ``micro_batch`` sets the generator forward-pass width.  ``deadline_s``
    is the default per-batch deadline (None = no deadline): once exceeded,
    degenerate outputs are served best-effort instead of entering the
    retry/fallback ladder.  The circuit breaker trips to simulator-only
    mode after ``breaker_threshold`` consecutive clip-level guard failures
    and half-opens a model probe after ``breaker_probe_after`` further
    clips.
    """

    queue_capacity: int = 256
    micro_batch: int = 8
    deadline_s: Optional[float] = None
    fallback_enabled: bool = True
    #: alternative binarization thresholds tried on a degenerate output
    retry_thresholds: Tuple[float, ...] = (0.35, 0.65)
    min_area_ratio: float = 0.2
    max_area_ratio: float = 6.0
    min_cd_ratio: float = 0.3
    max_cd_ratio: float = 3.0
    center_tolerance_px: float = 3.0
    max_components: int = 1
    breaker_threshold: int = 3
    breaker_probe_after: int = 8

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.micro_batch < 1:
            raise ConfigError(
                f"micro_batch must be >= 1, got {self.micro_batch}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigError(
                f"deadline_s must be >= 0 or None, got {self.deadline_s}"
            )
        for threshold in self.retry_thresholds:
            if not 0 < threshold < 1:
                raise ConfigError(
                    f"retry thresholds must lie in (0, 1), got {threshold}"
                )
        if not 0 < self.min_area_ratio < self.max_area_ratio:
            raise ConfigError(
                "area ratios must satisfy 0 < min < max, got "
                f"({self.min_area_ratio}, {self.max_area_ratio})"
            )
        if not 0 < self.min_cd_ratio < self.max_cd_ratio:
            raise ConfigError(
                "CD ratios must satisfy 0 < min < max, got "
                f"({self.min_cd_ratio}, {self.max_cd_ratio})"
            )
        if self.center_tolerance_px <= 0:
            raise ConfigError(
                "center_tolerance_px must be positive, got "
                f"{self.center_tolerance_px}"
            )
        if self.max_components < 1:
            raise ConfigError(
                f"max_components must be >= 1, got {self.max_components}"
            )
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_probe_after < 1:
            raise ConfigError(
                "breaker_probe_after must be >= 1, got "
                f"{self.breaker_probe_after}"
            )


@dataclass(frozen=True)
class ServerConfig:
    """Continuous-batching serving-loop knobs (the long-lived server).

    Requests queue on a bounded FIFO of ``queue_capacity`` slots and are
    coalesced into forward batches: the batcher closes a batch as soon as
    ``max_batch`` requests are waiting, or after ``max_wait_ms`` has passed
    since the *first* request of the batch arrived — the latency-versus-
    throughput knob (0 disables coalescing entirely: every request is
    served the moment the executor is free).

    ``default_deadline_s`` is attached to requests that do not carry their
    own deadline (None = no deadline).  ``watchdog_s`` bounds how long the
    executor may go without completing a batch while work is pending
    before the watchdog declares it wedged and fails every in-flight and
    queued request with a typed overload answer.  ``drain_timeout_s``
    bounds shutdown: requests still queued when it expires are shed with a
    ``shutdown`` answer rather than left dangling.
    """

    queue_capacity: int = 64
    max_batch: int = 8
    max_wait_ms: float = 5.0
    default_deadline_s: Optional[float] = None
    watchdog_s: float = 10.0
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch < 1:
            raise ConfigError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s < 0:
            raise ConfigError(
                "default_deadline_s must be >= 0 or None, got "
                f"{self.default_deadline_s}"
            )
        if self.watchdog_s <= 0:
            raise ConfigError(
                f"watchdog_s must be > 0, got {self.watchdog_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )


# ---------------------------------------------------------------------------
# Model registry / rollout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegistryConfig:
    """Model-registry location and canary-rollout policy.

    ``root`` is the on-disk registry directory (None = no registry
    configured; the CLI's ``--registry`` flag wins).  The rollout knobs
    govern the serving loop's canary mode: ``canary_fraction`` of requests
    route to the candidate model, each slot's degenerate-verdict/fallback
    rate is tracked over a sliding window of the last ``window`` served
    clips, and once both slots have at least ``min_samples`` clips the
    candidate is automatically rolled back when its bad rate exceeds the
    incumbent's by more than ``rollback_margin``.
    """

    root: Optional[str] = None
    canary_fraction: float = 0.1
    window: int = 64
    min_samples: int = 16
    rollback_margin: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ConfigError(
                "canary_fraction must be in (0, 1], got "
                f"{self.canary_fraction}"
            )
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ConfigError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.min_samples > self.window:
            raise ConfigError(
                "min_samples must fit in the sliding window "
                f"({self.min_samples} > {self.window})"
            )
        if not 0.0 <= self.rollback_margin < 1.0:
            raise ConfigError(
                "rollback_margin must be in [0, 1), got "
                f"{self.rollback_margin}"
            )


# ---------------------------------------------------------------------------
# Sweep orchestration
# ---------------------------------------------------------------------------

#: how a sweep trial is executed under its supervisor: ``none`` runs it in
#: the orchestrator's own thread (no preemption, so no timeouts), ``thread``
#: and ``process`` run it through a one-task :class:`~repro.runtime.parallel.
#: WorkerPool` whose per-task timeout can kill a hung trial.
SWEEP_ISOLATIONS = ("none", "thread", "process")


@dataclass(frozen=True)
class SweepConfig:
    """Multi-trial sweep supervision knobs (see :mod:`repro.sweep`).

    ``trial_timeout_s`` bounds one trial attempt's wall clock (``None`` = no
    bound; requires ``thread`` or ``process`` isolation, because an
    in-thread trial cannot be preempted).  A failed attempt — divergence,
    worker death, or timeout — is retried up to ``max_retries`` times on a
    deterministic exponential backoff (``retry_delay_s`` doubling by
    ``retry_factor`` up to ``retry_max_delay_s``; see
    :class:`~repro.runtime.retry.RetrySchedule`).  A trial whose retries are
    exhausted is marked failed; once more than ``max_failed_trials`` trials
    have failed the sweep itself fails closed with a
    :class:`~repro.errors.SweepError` naming the failed trial digests.
    These knobs steer supervision only — they are excluded from the trial
    config digest, so tightening a budget never changes trial identity.
    """

    trial_timeout_s: Optional[float] = None
    max_retries: int = 1
    retry_delay_s: float = 0.25
    retry_factor: float = 2.0
    retry_max_delay_s: float = 30.0
    max_failed_trials: int = 0
    isolation: str = "none"

    def __post_init__(self) -> None:
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ConfigError(
                "trial_timeout_s must be positive or None, got "
                f"{self.trial_timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_delay_s < 0:
            raise ConfigError(
                f"retry_delay_s must be >= 0, got {self.retry_delay_s}"
            )
        if self.retry_factor < 1.0:
            raise ConfigError(
                f"retry_factor must be >= 1, got {self.retry_factor}"
            )
        if self.retry_max_delay_s < self.retry_delay_s:
            raise ConfigError(
                f"retry_max_delay_s ({self.retry_max_delay_s}) must be >= "
                f"retry_delay_s ({self.retry_delay_s})"
            )
        if self.max_failed_trials < 0:
            raise ConfigError(
                f"max_failed_trials must be >= 0, got {self.max_failed_trials}"
            )
        if self.isolation not in SWEEP_ISOLATIONS:
            raise ConfigError(
                f"isolation must be one of {SWEEP_ISOLATIONS}, "
                f"got {self.isolation!r}"
            )
        if self.trial_timeout_s is not None and self.isolation == "none":
            raise ConfigError(
                "trial_timeout_s requires 'thread' or 'process' isolation "
                "(an in-thread trial cannot be preempted)"
            )


# ---------------------------------------------------------------------------
# Inverse lithography (ILT)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IltConfig:
    """Gradient-based mask optimization knobs (see :mod:`repro.ilt`).

    The optimizer treats the trained generator as a differentiable forward
    proxy: the GREEN (target) mask channel is parameterized as
    ``sigmoid(steepness * theta)`` and descended with momentum through
    :meth:`repro.nn.Sequential.input_gradient`.  ``steepness`` anneals from
    ``steepness_start`` to ``steepness_end`` over the run, pushing the
    continuous mask toward a manufacturable near-binary one whose residual
    gray pixels encode sub-pixel edge placement.  Every ``verify_every``
    steps (and at the end) the annealed candidate is re-simulated through
    the rigorous pipeline — the proxy never gets the final word — and the
    best *verified* candidate is reported.

    ``learning_rate`` is in theta units per step: the descent max-normalizes
    each gradient before the momentum update, so the step size is
    independent of the proxy loss scale.
    """

    steps: int = 40
    learning_rate: float = 0.25
    momentum: float = 0.9
    steepness_start: float = 4.0
    steepness_end: float = 16.0
    verify_every: int = 8
    #: verify with the rigorous (per-focus-plane) simulator instead of the
    #: compact one; far slower, same fail-closed contract
    rigorous: bool = False

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigError(f"steps must be >= 1, got {self.steps}")
        if self.learning_rate <= 0:
            raise ConfigError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if not 0 <= self.momentum < 1:
            raise ConfigError(
                f"momentum must lie in [0, 1), got {self.momentum}"
            )
        if self.steepness_start <= 0:
            raise ConfigError(
                f"steepness_start must be positive, got {self.steepness_start}"
            )
        if self.steepness_end < self.steepness_start:
            raise ConfigError(
                f"steepness_end ({self.steepness_end}) must be >= "
                f"steepness_start ({self.steepness_start})"
            )
        if self.verify_every < 1:
            raise ConfigError(
                f"verify_every must be >= 1, got {self.verify_every}"
            )


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs: run logging, metrics export, latency buckets.

    ``log_path`` / ``metrics_path`` / ``trace_path`` / ``profile_path`` are
    the config-level defaults for the CLI's ``--log-json`` /
    ``--metrics-out`` / ``--trace-out`` / ``--profile-out`` flags (the flags
    win); the bucket bounds feed every latency
    :class:`~repro.telemetry.Histogram`.
    """

    enabled: bool = True
    log_path: Optional[str] = None
    metrics_path: Optional[str] = None
    #: Chrome-trace-event JSON destination for the run's merged trace
    trace_path: Optional[str] = None
    #: layer-profile JSON destination (commands that run the networks)
    profile_path: Optional[str] = None
    #: histogram bucket upper bounds for stage/epoch latency, seconds
    latency_buckets_s: Tuple[float, ...] = (
        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
    )

    def __post_init__(self) -> None:
        if not self.latency_buckets_s:
            raise ConfigError("latency_buckets_s must not be empty")
        if any(
            b >= a
            for b, a in zip(self.latency_buckets_s, self.latency_buckets_s[1:])
        ):
            raise ConfigError(
                "latency_buckets_s must be strictly increasing, got "
                f"{self.latency_buckets_s}"
            )
        if any(b <= 0 for b in self.latency_buckets_s):
            raise ConfigError("latency bucket bounds must be positive")


# ---------------------------------------------------------------------------
# Bundle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to mint a dataset, train, and evaluate one node."""

    tech: TechnologyConfig
    optical: OpticalConfig = field(default_factory=OpticalConfig)
    resist: ResistConfig = field(default_factory=ResistConfig)
    image: ImageConfig = field(default_factory=ImageConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    data: DataIntegrityConfig = field(default_factory=DataIntegrityConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    registry: RegistryConfig = field(default_factory=RegistryConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    ilt: IltConfig = field(default_factory=IltConfig)

    def __post_init__(self) -> None:
        if self.model.image_size != self.image.mask_image_px:
            raise ConfigError(
                "model.image_size must equal image.mask_image_px "
                f"({self.model.image_size} != {self.image.mask_image_px})"
            )
        if self.image.mask_image_px != self.image.resist_image_px:
            raise ConfigError(
                "mask and resist images must share a resolution for the CGAN"
            )

    def replace(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Named technology nodes
# ---------------------------------------------------------------------------

N10 = TechnologyConfig(
    name="N10", contact_size_nm=60.0, pitch_nm=128.0, num_clips=982
)
N7 = TechnologyConfig(
    name="N7", contact_size_nm=60.0, pitch_nm=108.0, num_clips=979
)


def _scaled(tech: TechnologyConfig, *, image_px: int, base_filters: int,
            epochs: int, num_clips: int, grid_size: int,
            num_kernels: int, batch_size: int, seed: int,
            aux_epochs: int = None) -> ExperimentConfig:
    return ExperimentConfig(
        tech=dataclasses.replace(tech, num_clips=num_clips),
        optical=OpticalConfig(grid_size=grid_size, num_kernels=num_kernels),
        resist=ResistConfig(),
        image=ImageConfig(mask_image_px=image_px, resist_image_px=image_px),
        model=ModelConfig(
            image_size=image_px,
            base_filters=base_filters,
            aux_dropout_rate=0.5 if image_px >= 256 else 0.1,
        ),
        training=TrainingConfig(
            epochs=epochs,
            batch_size=batch_size,
            seed=seed,
            aux_epochs=aux_epochs if aux_epochs is not None else max(epochs, 60),
            snapshot_epochs=tuple(
                e for e in (1, 3, 5, 7, 15, 27, 50, 80) if e <= epochs
            ),
        ),
    )


def paper_n10() -> ExperimentConfig:
    """Exact paper-scale N10 experiment (Section 4)."""
    return _scaled(
        N10, image_px=256, base_filters=64, epochs=80, num_clips=982,
        grid_size=128, num_kernels=12, batch_size=4, seed=0,
    )


def paper_n7() -> ExperimentConfig:
    """Exact paper-scale N7 experiment (Section 4)."""
    return _scaled(
        N7, image_px=256, base_filters=64, epochs=80, num_clips=979,
        grid_size=128, num_kernels=12, batch_size=4, seed=0,
    )


def reduced(tech: TechnologyConfig = N10, *, num_clips: int = 160,
            epochs: int = 12, seed: int = 0) -> ExperimentConfig:
    """Benchmark-harness scale: same code paths, minutes on a CPU."""
    return _scaled(
        tech, image_px=64, base_filters=16, epochs=epochs,
        num_clips=num_clips, grid_size=64, num_kernels=6,
        batch_size=4, seed=seed,
    )


def tiny(tech: TechnologyConfig = N10, *, num_clips: int = 12,
         epochs: int = 1, seed: int = 0) -> ExperimentConfig:
    """Unit-test scale."""
    return _scaled(
        tech, image_px=32, base_filters=4, epochs=epochs,
        num_clips=num_clips, grid_size=32, num_kernels=4,
        batch_size=2, seed=seed, aux_epochs=max(epochs, 4),
    )
