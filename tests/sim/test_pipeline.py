"""Rigorous-simulation pipeline: golden-data minting and model-based OPC."""

import numpy as np
import pytest

from repro.config import N10, reduced, tiny
from repro.layout import ArrayType, generate_clip
from repro.sim import LithographySimulator


@pytest.fixture(scope="module")
def config():
    return reduced(N10, num_clips=4)


@pytest.fixture(scope="module")
def simulator(config):
    return LithographySimulator(config)


@pytest.fixture(scope="module")
def clip(config):
    return generate_clip(config.tech, np.random.default_rng(21))


class TestSimulateClip:
    def test_produces_golden_window(self, simulator, clip, config):
        result = simulator.simulate_clip(clip)
        px = config.image.resist_image_px
        assert result.golden_window.shape == (px, px)
        assert result.golden_window.sum() > 0
        assert set(np.unique(result.golden_window)) <= {0.0, 1.0}

    def test_aerial_has_contrast(self, simulator, clip):
        result = simulator.simulate_clip(clip)
        assert result.aerial.max() > 3 * result.aerial.mean()

    def test_timing_recorded(self, config, clip):
        simulator = LithographySimulator(config)
        simulator.simulate_clip(clip)
        for stage in ("rasterize", "optical", "resist", "contour"):
            assert simulator.timer.count(stage) >= 1
            assert simulator.timer.total(stage) > 0

    def test_rigorous_mode_matches_compact_shape(self, config, clip):
        compact = LithographySimulator(config).simulate_clip(clip)
        rigorous = LithographySimulator(
            config, rigorous=True, source_samples=21
        ).simulate_clip(clip)
        # Same physics, different source quadrature: windows nearly agree.
        overlap = (compact.golden_window * rigorous.golden_window).sum()
        union = np.clip(
            compact.golden_window + rigorous.golden_window, 0, 1
        ).sum()
        assert overlap / union > 0.8

    def test_rigorous_mode_slower(self, config, clip):
        compact = LithographySimulator(config)
        rigorous = LithographySimulator(config, rigorous=True, source_samples=31)
        compact.simulate_clip(clip)
        compact.simulate_clip(clip)  # second run: imager is cached
        rigorous.simulate_clip(clip)
        assert rigorous.timer.total("optical") > compact.timer.mean("optical")

    def test_different_array_types_print_differently(self, simulator, config):
        rng = np.random.default_rng(5)
        windows = {}
        for array_type in ArrayType:
            clip = generate_clip(config.tech, rng, array_type=array_type)
            windows[array_type] = simulator.simulate_clip(clip).golden_window
        areas = {t: w.sum() for t, w in windows.items()}
        assert len(set(areas.values())) > 1  # neighborhood changes the print


class TestModelBasedOpc:
    def test_refinement_improves_cd(self, config):
        """Model-based OPC drives the printed CD toward the drawn 60 nm."""
        rng = np.random.default_rng(3)
        clip = generate_clip(config.tech, rng, array_type=ArrayType.ISOLATED)
        simulator = LithographySimulator(config)

        rule_based = simulator.simulate_clip(clip, model_based_opc=False)
        refined = simulator.simulate_clip(clip, model_based_opc=True)

        center = simulator.clip_center
        drawn = clip.target

        def cd_error(result):
            bbox = result.pattern.target_bbox_nm(center)
            return abs(bbox.width - drawn.width) + abs(bbox.height - drawn.height)

        assert cd_error(refined) <= cd_error(rule_based) + 1e-9


class TestRigorousFidelityKnobs:
    def test_rigorous_grid_size_applied(self, config):
        simulator = LithographySimulator(
            config, rigorous=True, rigorous_grid_size=128
        )
        assert simulator.grid.size == 128

    def test_grid_size_ignored_in_compact_mode(self, config):
        simulator = LithographySimulator(
            config, rigorous=False, rigorous_grid_size=128
        )
        assert simulator.grid.size == config.optical.grid_size

    def test_focus_stack_lowers_peak_intensity(self, config, clip):
        """Averaging defocused planes blurs the image: peak must drop."""
        from repro.layout import build_mask_layout

        layout = build_mask_layout(clip)
        single = LithographySimulator(
            config, rigorous=True, source_samples=21
        ).aerial_image(layout)
        stacked = LithographySimulator(
            config, rigorous=True, source_samples=21,
            focus_planes_nm=(-60.0, 0.0, 60.0),
        ).aerial_image(layout)
        assert stacked.max() < single.max()

    def test_focus_stack_still_prints(self, config, clip):
        simulator = LithographySimulator(
            config, rigorous=True, source_samples=21,
            focus_planes_nm=(-40.0, 0.0, 40.0),
        )
        result = simulator.simulate_clip(clip)
        assert result.golden_window.sum() > 0
