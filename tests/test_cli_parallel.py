"""CLI-level parallel guarantees: byte-identical fan-out and crash drills."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data import manifest_path_for


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("cli_parallel")


@pytest.fixture(scope="module")
def serial_path(workspace):
    path = workspace / "serial.npz"
    assert main([
        "mint", "--node", "N10", "--clips", "6", "--seed", "3",
        "--workers", "1", "--out", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def parallel_path(workspace):
    path = workspace / "parallel.npz"
    assert main([
        "mint", "--node", "N10", "--clips", "6", "--seed", "3",
        "--workers", "4", "--out", str(path),
    ]) == 0
    return path


class TestParserSurface:
    @pytest.mark.parametrize("command,extra", [
        ("mint", ["--out", "x.npz"]),
        ("train", ["--dataset", "d.npz", "--out", "m"]),
        ("evaluate", ["--dataset", "d.npz", "--model", "m"]),
        ("predict", ["--dataset", "d.npz", "--model", "m"]),
    ])
    def test_workers_flag_shared_across_subcommands(self, command, extra):
        args = build_parser().parse_args([command, *extra, "--workers", "4"])
        assert args.workers == 4

    def test_process_window_has_no_workers_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["process-window", "--workers", "4"]
            )

    @pytest.mark.parametrize("command,extra", [
        ("mint", ["--out", "x.npz"]),
        ("train", ["--dataset", "d.npz", "--out", "m"]),
        ("evaluate", ["--dataset", "d.npz", "--model", "m"]),
        ("predict", ["--dataset", "d.npz", "--model", "m"]),
        ("process-window", []),
    ])
    def test_telemetry_flags_shared_across_subcommands(self, command, extra):
        args = build_parser().parse_args([
            command, *extra, "--log-json", "run.jsonl",
            "--metrics-out", "metrics.json", "--seed", "5",
        ])
        assert args.log_json == "run.jsonl"
        assert args.metrics_out == "metrics.json"
        assert args.seed == 5


class TestByteIdenticalFanout:
    def test_archives_match(self, serial_path, parallel_path):
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_manifests_match(self, serial_path, parallel_path):
        assert (manifest_path_for(serial_path).read_text()
                == manifest_path_for(parallel_path).read_text())

    def test_evaluate_json_identical_on_either_archive(
            self, workspace, serial_path, parallel_path, capsys):
        model_dir = workspace / "model"
        assert main([
            "train", "--dataset", str(serial_path), "--epochs", "1",
            "--seed", "3", "--out", str(model_dir),
        ]) == 0
        capsys.readouterr()
        rows = []
        for dataset in (serial_path, parallel_path):
            assert main([
                "evaluate", "--dataset", str(dataset),
                "--model", str(model_dir), "--epochs", "1", "--seed", "3",
                "--json",
            ]) == 0
            out = capsys.readouterr().out
            payload = out[out.index("{"):out.rindex("}") + 1]
            rows.append(json.loads(payload))
        assert rows[0] == rows[1]


class TestWorkerCrashDrill:
    def test_injected_crash_exits_named_not_hung(self, workspace, capsys):
        code = main([
            "mint", "--node", "N10", "--clips", "6", "--seed", "3",
            "--workers", "2", "--inject-worker-crash", "1",
            "--out", str(workspace / "crashed.npz"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "shard 1" in captured.err
        assert "error:" in captured.err
        assert "fault drill" in captured.out
        assert not (workspace / "crashed.npz").exists()

    def test_serial_rerun_after_crash_matches_baseline(
            self, workspace, serial_path):
        rerun = workspace / "rerun.npz"
        assert main([
            "mint", "--node", "N10", "--clips", "6", "--seed", "3",
            "--out", str(rerun),
        ]) == 0
        assert rerun.read_bytes() == serial_path.read_bytes()
