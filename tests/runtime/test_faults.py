"""Fault injection: deterministic, site-addressed, fire-once."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime.faults import FaultPlan


class TestNanInjection:
    def test_fires_once_at_the_scheduled_site(self):
        plan = FaultPlan().inject_nan("cgan", 2, batch=1)
        clean = np.ones((3, 2), dtype=np.float32)
        assert np.array_equal(plan.poison("cgan", 1, 1, clean), clean)
        assert np.array_equal(plan.poison("cgan", 2, 0, clean), clean)
        poisoned = plan.poison("cgan", 2, 1, clean)
        assert np.all(np.isnan(poisoned))
        assert poisoned.shape == clean.shape
        # retry of the same site proceeds cleanly
        assert np.array_equal(plan.poison("cgan", 2, 1, clean), clean)
        assert plan.fired == [("nan", "cgan", 2, 1)]
        assert plan.pending == 0

    def test_repeat_fault_keeps_firing(self):
        plan = FaultPlan().inject_nan("p", 1, repeat=True)
        clean = np.zeros(4, dtype=np.float32)
        for _ in range(3):
            assert np.all(np.isnan(plan.poison("p", 1, 0, clean)))
        assert plan.pending == 1

    def test_original_array_untouched(self):
        plan = FaultPlan().inject_nan("p", 1)
        clean = np.ones(4, dtype=np.float32)
        plan.poison("p", 1, 0, clean)
        assert np.all(np.isfinite(clean))


class TestInterruptInjection:
    def test_raises_keyboard_interrupt(self):
        plan = FaultPlan().inject_interrupt("cgan", 3, batch=2)
        plan.on_batch_start("cgan", 3, 1)  # wrong batch: no fire
        with pytest.raises(KeyboardInterrupt, match="epoch 3, batch 2"):
            plan.on_batch_start("cgan", 3, 2)
        plan.on_batch_start("cgan", 3, 2)  # fired once, now clear
        assert plan.fired == [("interrupt", "cgan", 3, 2)]


class TestScheduling:
    def test_site_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan().inject_nan("p", 0)
        with pytest.raises(ConfigError):
            FaultPlan().inject_interrupt("p", 1, batch=-1)

    def test_random_sites_are_seed_deterministic(self):
        a = FaultPlan(seed=11).inject_random_nans(
            "p", epochs=4, batches_per_epoch=5, count=3
        )
        b = FaultPlan(seed=11).inject_random_nans(
            "p", epochs=4, batches_per_epoch=5, count=3
        )
        assert a._nan.keys() == b._nan.keys()
        assert len(a._nan) == 3
        for _, epoch, batch in a._nan:
            assert 1 <= epoch <= 4 and 0 <= batch < 5

    def test_random_sites_overflow_rejected(self):
        with pytest.raises(ConfigError, match="slots"):
            FaultPlan().inject_random_nans(
                "p", epochs=1, batches_per_epoch=2, count=3
            )


class TestFileDamage:
    def test_truncate(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(200)))
        FaultPlan.truncate_file(path, keep_bytes=10)
        assert path.read_bytes() == bytes(range(10))

    def test_corrupt_preserves_size_and_is_deterministic(self, tmp_path):
        original = bytes(range(256)) * 4
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(original)
        b.write_bytes(original)
        FaultPlan.corrupt_file(a, seed=5)
        FaultPlan.corrupt_file(b, seed=5)
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_bytes()) == len(original)
        assert a.read_bytes() != original
