"""Serving-loop soak benchmark: throughput, tail latency, and shed fairness.

Drives :func:`repro.serving.run_soak` against an :class:`InferenceServer`
built on the golden-playback model (no training needed — the soak measures
the *loop*, not the network), under a ramping QPS load with two tenants and
a 10% degenerate-output fault drill, then records ``BENCH_serve.json``:
throughput, p50/p99 end-to-end latency (queueing + coalescing + ladder),
and the per-tenant shed accounting under overload.

Environment knobs for constrained runners:

* ``REPRO_BENCH_SERVE_DURATION`` — soak seconds (default 8)
* ``REPRO_BENCH_SERVE_QPS_START`` / ``REPRO_BENCH_SERVE_QPS_END`` — the
  ramp endpoints (default 30 -> 150)

Absolute throughput depends on the host; the tracked invariants do not:
zero unanswered requests, every shed typed, and a bounded per-tenant shed
spread.
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import write_artifact

from repro.config import N10, reduced
from repro.data import synthesize_dataset
from repro.runtime import FaultPlan
from repro.serving import (
    InferenceServer,
    PlaybackModel,
    TenantQuota,
    run_soak,
)
from repro.telemetry import Tracer, build_fingerprint

SOAK_DURATION = float(os.environ.get("REPRO_BENCH_SERVE_DURATION", 8.0))
SOAK_QPS_START = float(os.environ.get("REPRO_BENCH_SERVE_QPS_START", 30.0))
SOAK_QPS_END = float(os.environ.get("REPRO_BENCH_SERVE_QPS_END", 150.0))


@pytest.fixture(scope="module")
def soak_inputs():
    """A small playback dataset and the soak's experiment config."""
    config = reduced(N10, num_clips=24, epochs=1, seed=7)
    dataset = synthesize_dataset(config)
    return config, dataset


def test_serve_soak(soak_inputs, artifact_dir):
    config, dataset = soak_inputs
    expected = max(1, int(round(
        SOAK_DURATION * (SOAK_QPS_START + SOAK_QPS_END) / 2.0)))
    faults = FaultPlan(seed=7)
    injected = faults.inject_random_degenerate(expected, 0.10)

    tracer = Tracer()
    server = InferenceServer(
        PlaybackModel(dataset), config,
        quotas=(TenantQuota("opc", weight=2.0), TenantQuota("ilt")),
        faults=faults, tracer=tracer,
    )
    report = run_soak(
        server, list(dataset.masks), duration_s=SOAK_DURATION,
        qps_start=SOAK_QPS_START, qps_end=SOAK_QPS_END,
        tenants=("opc", "ilt"),
    )

    # The invariant the loop may never break, load or no load.
    assert report.unanswered == 0
    assert report.answered == report.submitted
    assert report.served > 0
    assert not report.wedged

    stats = server.stats()
    lines = [
        f"serve soak: {report.duration_s:.1f}s ramp "
        f"{SOAK_QPS_START:g}->{SOAK_QPS_END:g} qps, "
        f"{report.submitted} submitted",
        f"  served {report.served}, shed {report.shed} "
        f"({report.shed_rate:.1%}), deadline-expired "
        f"{report.deadline_expired}, unanswered {report.unanswered}",
        f"  throughput {report.throughput_clips_per_s:.1f} clips/s over "
        f"{report.batches} coalesced batches "
        f"(queue high-water {stats.queue_high_water})",
        f"  latency p50 {report.latency_p50_ms:.2f} ms, "
        f"p99 {report.latency_p99_ms:.2f} ms",
        f"  fairness gap {report.fairness_gap():.3f} across "
        f"{len(report.tenants)} tenants",
    ]
    write_artifact(artifact_dir, "serve_soak.txt", lines)

    payload = report.to_dict()
    payload["schema_version"] = 1
    payload["build"] = build_fingerprint()
    payload["injected_degenerate"] = len(injected)
    payload["server"] = stats.to_dict()
    payload["batch_coalesce_spans"] = tracer.count("batch_coalesce")
    (artifact_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
