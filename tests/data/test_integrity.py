"""The self-healing data layer: manifests, validation, quarantine, repair."""

import json

import numpy as np
import pytest

from repro.config import N7, tiny
from repro.data import (
    MANIFEST_SCHEMA_VERSION,
    DatasetManifest,
    DatasetValidator,
    PairedDataset,
    build_manifest,
    dataset_record_hashes,
    load_dataset,
    load_manifest,
    manifest_path_for,
    record_hash,
    repair_dataset,
    save_dataset,
    synthesis_digest,
    synthesize_dataset,
    validate_dataset,
)
from repro.errors import ConfigError, DataError, DataIntegrityError
from repro.runtime import FaultPlan


@pytest.fixture()
def saved(tiny_dataset, tmp_path):
    """The session dataset saved (with manifest) into this test's tmp dir."""
    return save_dataset(tiny_dataset, tmp_path / "ds")


@pytest.fixture()
def corrupted(saved):
    """``saved`` with three seed-chosen records stomped; yields (path, set)."""
    chosen = FaultPlan(seed=7).corrupt_random_records(saved, 3)
    return saved, chosen


class TestHashing:
    def test_hash_is_content_addressed(self, tiny_dataset):
        hashes = dataset_record_hashes(tiny_dataset)
        assert len(hashes) == len(tiny_dataset)
        assert len(set(hashes)) == len(hashes)  # distinct records differ
        assert hashes == dataset_record_hashes(tiny_dataset)  # pure

    def test_hash_sensitive_to_every_field(self, tiny_dataset):
        i = 0
        base = record_hash(
            tiny_dataset.masks[i], tiny_dataset.resists[i],
            tiny_dataset.centers[i], str(tiny_dataset.array_types[i]),
        )
        mask = tiny_dataset.masks[i].copy()
        mask[0, 0, 0] += 0.5
        assert record_hash(mask, tiny_dataset.resists[i],
                           tiny_dataset.centers[i],
                           str(tiny_dataset.array_types[i])) != base
        assert record_hash(tiny_dataset.masks[i], tiny_dataset.resists[i],
                           tiny_dataset.centers[i] + 1.0,
                           str(tiny_dataset.array_types[i])) != base
        assert record_hash(tiny_dataset.masks[i], tiny_dataset.resists[i],
                           tiny_dataset.centers[i], "other") != base

    def test_synthesis_digest_ignores_training_knobs(self, tiny_config):
        import dataclasses

        other = dataclasses.replace(
            tiny_config,
            training=dataclasses.replace(
                tiny_config.training, epochs=99, seed=123),
        )
        assert synthesis_digest(other) == synthesis_digest(tiny_config)

    def test_synthesis_digest_sees_the_node(self, tiny_config):
        assert synthesis_digest(tiny(N7, num_clips=12)) != \
            synthesis_digest(tiny_config)


class TestManifest:
    def test_save_writes_schema_versioned_sidecar(self, saved):
        sidecar = manifest_path_for(saved)
        assert sidecar.name == "ds.manifest.json"
        payload = json.loads(sidecar.read_text())
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert payload["hash_algorithm"] == "sha256"
        assert payload["num_records"] == len(payload["record_hashes"])
        assert payload["provenance"]["attempts"]

    def test_manifest_roundtrip(self, saved, tiny_dataset):
        manifest = load_manifest(saved)
        assert manifest is not None
        assert manifest.record_hashes == dataset_record_hashes(tiny_dataset)
        assert manifest.tech_name == "N10"
        assert manifest.provenance.base_seed == \
            tiny_dataset.provenance.base_seed

    def test_missing_manifest_is_none(self, saved):
        manifest_path_for(saved).unlink()
        assert load_manifest(saved) is None

    def test_mangled_manifest_fails_closed(self, saved):
        manifest_path_for(saved).write_text("{not json")
        with pytest.raises(DataError, match="unreadable dataset manifest"):
            load_manifest(saved)

    def test_wrong_schema_version_fails_closed(self, saved):
        sidecar = manifest_path_for(saved)
        payload = json.loads(sidecar.read_text())
        payload["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="schema_version"):
            load_manifest(saved)

    def test_provenance_length_mismatch_rejected(self, tiny_dataset):
        import dataclasses

        short = dataclasses.replace(
            tiny_dataset.provenance,
            attempts=tiny_dataset.provenance.attempts[:-1],
        )
        with pytest.raises(DataError, match="provenance covers"):
            build_manifest(tiny_dataset, provenance=short)

    def test_derived_dataset_gets_hash_only_manifest(self, tiny_dataset):
        subset = tiny_dataset.subset(np.arange(4))
        manifest = build_manifest(subset)
        assert manifest.provenance is None
        assert len(manifest.record_hashes) == 4


class TestValidator:
    def test_fresh_n10_dataset_never_flags(self, tiny_dataset, tiny_config):
        report = validate_dataset(
            tiny_dataset, tiny_config, build_manifest(tiny_dataset))
        assert report.ok
        assert report.quarantined == 0
        assert not report.manifest_missing
        assert "verified" in report.summary()

    def test_fresh_n7_dataset_never_flags(self):
        config = tiny(N7, num_clips=8, seed=21)
        dataset = synthesize_dataset(config)
        report = validate_dataset(dataset, config, build_manifest(dataset))
        assert report.ok, report.summary()

    def test_nan_record_quarantined_as_non_finite(self, tiny_dataset,
                                                  tiny_config):
        resists = tiny_dataset.resists.copy()
        resists[3, 0, 1, 1] = np.nan
        broken = PairedDataset(
            tiny_dataset.masks, resists, tiny_dataset.centers,
            tiny_dataset.array_types, tech_name=tiny_dataset.tech_name,
        )
        report = validate_dataset(broken, tiny_config)
        assert report.quarantined_indices == (3,)
        assert "non-finite" in report.issues[0].reasons

    def test_out_of_range_record_quarantined(self, tiny_dataset, tiny_config):
        resists = tiny_dataset.resists.copy()
        resists[5] *= 3.0
        broken = PairedDataset(
            tiny_dataset.masks, resists, tiny_dataset.centers,
            tiny_dataset.array_types, tech_name=tiny_dataset.tech_name,
        )
        report = validate_dataset(broken, tiny_config)
        assert 5 in report.quarantined_indices
        bad = next(i for i in report.issues if i.index == 5)
        assert "range" in bad.reasons

    def test_center_drift_quarantined(self, tiny_dataset, tiny_config):
        centers = tiny_dataset.centers.copy()
        centers[2] += 6.0  # well past the 1-px tolerance
        broken = PairedDataset(
            tiny_dataset.masks, tiny_dataset.resists, centers,
            tiny_dataset.array_types, tech_name=tiny_dataset.tech_name,
        )
        report = validate_dataset(broken, tiny_config)
        assert report.quarantined_indices == (2,)
        assert "center-drift" in report.issues[0].reasons

    def test_record_count_mismatch_is_archive_level(self, tiny_dataset,
                                                    tiny_config):
        manifest = build_manifest(tiny_dataset)
        subset = tiny_dataset.subset(np.arange(5))
        with pytest.raises(DataError, match="rewritten"):
            DatasetValidator(tiny_config).validate(subset, manifest)

    def test_report_accounting(self, corrupted, tiny_config):
        path, chosen = corrupted
        report = validate_dataset(
            load_dataset(path), tiny_config, load_manifest(path))
        assert report.quarantined_indices == chosen
        assert report.counts_by_reason()["hash"] == len(chosen)
        assert set(report.clean_indices).isdisjoint(chosen)
        assert len(report.clean_indices) + report.quarantined == \
            report.num_records
        payload = report.to_dict()
        assert payload["quarantined"] == len(chosen)
        assert [i["index"] for i in payload["issues"]] == list(chosen)


class TestLoadPolicies:
    def test_unknown_policy_rejected(self, saved, tiny_config):
        with pytest.raises(ConfigError, match="policy"):
            load_dataset(saved, policy="paranoid", config=tiny_config)

    def test_policy_requires_config(self, saved):
        with pytest.raises(ConfigError, match="requires an ExperimentConfig"):
            load_dataset(saved, policy="strict")

    def test_strict_passes_a_clean_archive(self, saved, tiny_config,
                                           tiny_dataset):
        dataset = load_dataset(saved, policy="strict", config=tiny_config)
        assert len(dataset) == len(tiny_dataset)

    def test_strict_names_indices_and_reasons(self, corrupted, tiny_config):
        path, chosen = corrupted
        with pytest.raises(DataIntegrityError) as excinfo:
            load_dataset(path, policy="strict", config=tiny_config)
        assert excinfo.value.indices == chosen
        assert all("hash" in reasons for reasons in excinfo.value.reasons)
        for index in chosen:
            assert str(index) in str(excinfo.value)

    def test_salvage_returns_exactly_the_verified_subset(self, corrupted,
                                                         tiny_config,
                                                         tiny_dataset):
        path, chosen = corrupted
        dataset, report = load_dataset(
            path, policy="salvage", config=tiny_config)
        assert report.quarantined_indices == chosen
        assert len(dataset) == len(tiny_dataset) - len(chosen)
        clean = [i for i in range(len(tiny_dataset)) if i not in chosen]
        assert np.array_equal(dataset.masks, tiny_dataset.masks[clean])

    def test_salvage_of_clean_archive_keeps_everything(self, saved,
                                                       tiny_config,
                                                       tiny_dataset):
        dataset, report = load_dataset(
            saved, policy="salvage", config=tiny_config)
        assert report.ok
        assert len(dataset) == len(tiny_dataset)

    def test_legacy_archive_without_manifest_still_loads(self, saved,
                                                         tiny_config,
                                                         tiny_dataset):
        manifest_path_for(saved).unlink()
        dataset, report = load_dataset(
            saved, policy="salvage", config=tiny_config)
        assert report.manifest_missing
        assert report.ok  # structural + geometry checks still pass
        assert len(dataset) == len(tiny_dataset)


class TestRepair:
    def test_repair_restores_bit_identical_records(self, corrupted,
                                                   tiny_config, tiny_dataset):
        path, chosen = corrupted
        manifest = load_manifest(path)
        report = repair_dataset(path, tiny_config)
        assert report.repaired_indices == chosen
        assert report.reasons["hash"] == len(chosen)
        healed = load_dataset(path)
        assert dataset_record_hashes(healed) == manifest.record_hashes
        assert np.array_equal(healed.masks, tiny_dataset.masks)
        assert np.array_equal(healed.resists, tiny_dataset.resists)
        assert np.array_equal(healed.centers, tiny_dataset.centers)
        assert validate_dataset(healed, tiny_config, manifest).ok

    def test_repair_of_clean_archive_is_a_no_op(self, saved, tiny_config):
        before = saved.read_bytes()
        report = repair_dataset(saved, tiny_config)
        assert report.repaired_indices == ()
        assert saved.read_bytes() == before

    def test_repair_without_manifest_refused(self, corrupted, tiny_config):
        path, _ = corrupted
        manifest_path_for(path).unlink()
        with pytest.raises(DataIntegrityError, match="no manifest"):
            repair_dataset(path, tiny_config)

    def test_repair_without_provenance_refused(self, tiny_dataset,
                                               tiny_config, tmp_path):
        subset = tiny_dataset.subset(np.arange(6))  # derived: no provenance
        path = save_dataset(subset, tmp_path / "ds")
        FaultPlan(seed=1).corrupt_record(path, 0)
        with pytest.raises(DataIntegrityError, match="provenance"):
            repair_dataset(path, tiny_config)

    def test_repair_under_wrong_config_refused(self, corrupted):
        path, _ = corrupted
        with pytest.raises(DataIntegrityError, match="digest"):
            repair_dataset(path, tiny(N7, num_clips=12))

    def test_repair_preserves_the_manifest_sidecar(self, corrupted,
                                                   tiny_config):
        path, _ = corrupted
        before = manifest_path_for(path).read_bytes()
        repair_dataset(path, tiny_config)
        assert manifest_path_for(path).read_bytes() == before
