"""Layer profiler: per-layer timing/FLOPs, determinism, zero overhead."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.nn.layers.activations import ReLU
from repro.nn.layers.dense import Dense
from repro.nn.network import Sequential
from repro.telemetry import LayerProfiler, ProfileReport, profiled
from repro.telemetry.profile import LayerStats


def _toy_net(name="toy"):
    rng = np.random.default_rng(0)
    return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)],
                      name=name)


def _run(net, passes=1):
    x = np.ones((3, 4), dtype=np.float32)
    for _ in range(passes):
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out))
    return out


class TestLayerProfiler:
    def test_collects_one_row_per_layer(self):
        net = _toy_net()
        profiler = LayerProfiler()
        net.profiler = profiler
        _run(net)
        report = profiler.report()
        assert [(r.network, r.index, r.op) for r in report.rows] == [
            ("toy", 0, "FC"), ("toy", 1, "ReLU"), ("toy", 2, "FC"),
        ]
        for row in report.rows:
            assert row.calls == 1
            assert row.forward_s >= 0.0
            assert row.backward_s >= 0.0
            assert row.activation_bytes > 0

    def test_flop_estimates_match_closed_form(self):
        net = _toy_net()
        net.profiler = LayerProfiler()
        _run(net)
        report = net.profiler.report()
        # Dense: 2 * in * out * batch; ReLU: 1 per element.
        assert report.rows[0].flops == 2 * 4 * 8 * 3
        assert report.rows[1].flops == 8 * 3
        assert report.rows[2].flops == 2 * 8 * 2 * 3
        assert report.flops == sum(r.flops for r in report.rows)

    def test_profiled_output_matches_unprofiled(self):
        plain = _run(_toy_net())
        net = _toy_net()
        net.profiler = LayerProfiler()
        np.testing.assert_array_equal(_run(net), plain)

    def test_calls_accumulate_across_passes(self):
        net = _toy_net()
        net.profiler = LayerProfiler()
        _run(net, passes=3)
        assert all(row.calls == 3 for row in net.profiler.report().rows)

    def test_reset_clears_stats(self):
        net = _toy_net()
        net.profiler = LayerProfiler()
        _run(net)
        net.profiler.reset()
        assert net.profiler.report().rows == ()

    def test_one_profiler_observes_multiple_networks(self):
        a, b = _toy_net("gen"), _toy_net("disc")
        profiler = LayerProfiler()
        with profiled(profiler, a, b):
            _run(a)
            _run(b)
        networks = {row.network for row in profiler.report().rows}
        assert networks == {"gen", "disc"}

    def test_profiled_context_restores_previous_attachment(self):
        net = _toy_net()
        with profiled(LayerProfiler(), net):
            assert net.profiler is not None
        assert net.profiler is None

    def test_disabled_profiling_never_calls_the_clock(self, monkeypatch):
        calls = {"n": 0}

        def counting_clock():
            calls["n"] += 1
            return 0.0

        monkeypatch.setattr(
            "repro.telemetry.profile.perf_counter", counting_clock
        )
        _run(_toy_net())
        assert calls["n"] == 0


class TestProfileReport:
    def _report(self):
        return ProfileReport(rows=(
            LayerStats("net", 0, "FC", "-", calls=1,
                       forward_s=0.1, backward_s=0.1, flops=100),
            LayerStats("net", 1, "ReLU", "-", calls=1,
                       forward_s=0.5, backward_s=0.2, flops=10),
            LayerStats("net", 2, "FC", "-", calls=1,
                       forward_s=0.1, backward_s=0.1, flops=100),
        ))

    def test_top_layers_ranked_by_total_with_deterministic_ties(self):
        top = self._report().top_layers(3)
        assert [(r.network, r.index) for r in top] == [
            ("net", 1), ("net", 0), ("net", 2),
        ]

    def test_totals(self):
        report = self._report()
        assert report.forward_s == pytest.approx(0.7)
        assert report.backward_s == pytest.approx(0.4)
        assert report.flops == 210

    def test_save_load_round_trip(self, tmp_path):
        report = self._report()
        path = report.save(tmp_path / "profile.json")
        loaded = ProfileReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_load_fails_closed_on_garbage(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("not json")
        with pytest.raises(TelemetryError):
            ProfileReport.load(path)
        path.write_text('{"layers": [{"nonsense": true}]}')
        with pytest.raises(TelemetryError):
            ProfileReport.load(path)

    def test_format_table_mentions_hot_layer_first(self):
        table = self._report().format_table(2)
        lines = table.splitlines()
        assert "net[1]" in lines[1]
        assert len(lines) == 3
