"""Shared benchmark state: datasets and trained models for both nodes.

Training the three flows (LithoGAN, plain CGAN, Ref-[12]) dominates the
benchmark suite's wall-clock, so it happens once per session in the
``bundle_n10`` / ``bundle_n7`` fixtures and is cached on disk — re-running
``pytest benchmarks/ --benchmark-only`` after the first time loads the
pickled bundle instead of retraining.  Delete ``benchmarks/.cache`` to force
a retrain (e.g. after changing training code).

The reduced scale (64x64 images, base width 16) keeps every code path of the
paper-scale setup; see DESIGN.md section 5.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import pytest

from repro.baselines import Ref12Flow
from repro.config import ExperimentConfig, N7, N10, reduced
from repro.core import CganHistory, LithoGan, LithoGanHistory, PlainCgan
from repro.core.trainer import RegressionHistory
from repro.data import PairedDataset, synthesize_dataset

CACHE_DIR = Path(__file__).parent / ".cache"
ARTIFACT_DIR = Path(__file__).parent / "artifacts"

#: benchmark-scale experiment knobs (kept small enough for CPU training);
#: REPRO_BENCH_CLIPS / REPRO_BENCH_EPOCHS override them for constrained
#: runners (the CI report drill runs a much smaller configuration)
BENCH_CLIPS = int(os.environ.get("REPRO_BENCH_CLIPS", 180))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", 10))


@dataclass
class TrainedBundle:
    """Everything the table/figure benchmarks consume for one node."""

    config: ExperimentConfig
    train: PairedDataset
    test: PairedDataset
    lithogan: LithoGan
    cgan: PlainCgan
    ref12: Ref12Flow
    lithogan_history: LithoGanHistory
    cgan_history: CganHistory
    ref12_history: RegressionHistory
    #: test-set predictions, computed once: method -> (N, H, W) binary
    predictions: Dict[str, np.ndarray]
    #: LithoGAN-predicted centers for the test set
    predicted_centers: np.ndarray
    #: aerial windows of the test set (reused by the Ref-[12] timing bench)
    test_aerial_windows: np.ndarray

    @property
    def nm_per_px(self) -> float:
        return self.config.image.resist_nm_per_px(self.config.tech)

    @property
    def golden(self) -> np.ndarray:
        return self.test.resists[:, 0]


def _bench_config(tech) -> ExperimentConfig:
    return reduced(tech, num_clips=BENCH_CLIPS, epochs=BENCH_EPOCHS)


def _cache_key(config: ExperimentConfig) -> str:
    digest = hashlib.md5(repr(config).encode()).hexdigest()[:12]
    return f"bundle_{config.tech.name}_{digest}.pkl"


def _train_bundle(config: ExperimentConfig) -> TrainedBundle:
    rng = np.random.default_rng(config.training.seed)
    dataset = synthesize_dataset(config)
    train, test = dataset.split(config.training.train_fraction, rng)

    snapshot_inputs = test.masks[:4]

    lithogan = LithoGan(config, rng)
    lithogan_history = lithogan.fit(
        train, rng, snapshot_inputs=snapshot_inputs
    )

    cgan = PlainCgan(config, rng)
    cgan_history = cgan.fit(train, rng, snapshot_inputs=snapshot_inputs)

    ref12 = Ref12Flow(config, rng)
    ref12_history = ref12.fit(train, rng)

    test_windows = ref12.compute_aerial_windows(test.masks)
    predictions = {
        "Ref. [12]": ref12.predict_resist(
            test.masks, aerial_windows=test_windows
        ),
        "CGAN": cgan.predict_resist(test.masks),
        "LithoGAN": lithogan.predict_resist(test.masks),
    }
    return TrainedBundle(
        config=config,
        train=train,
        test=test,
        lithogan=lithogan,
        cgan=cgan,
        ref12=ref12,
        lithogan_history=lithogan_history,
        cgan_history=cgan_history,
        ref12_history=ref12_history,
        predictions=predictions,
        predicted_centers=lithogan.predict_centers(test.masks),
        test_aerial_windows=test_windows,
    )


def _load_or_train(config: ExperimentConfig) -> TrainedBundle:
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / _cache_key(config)
    if path.exists():
        with open(path, "rb") as handle:
            return pickle.load(handle)
    bundle = _train_bundle(config)
    with open(path, "wb") as handle:
        pickle.dump(bundle, handle)
    return bundle


@pytest.fixture(scope="session")
def bundle_n10() -> TrainedBundle:
    return _load_or_train(_bench_config(N10))


@pytest.fixture(scope="session")
def bundle_n7() -> TrainedBundle:
    return _load_or_train(_bench_config(N7))


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def write_artifact(directory: Path, name: str, lines) -> Path:
    """Persist a regenerated table/figure as text and echo it to stdout."""
    path = directory / name
    text = "\n".join(lines)
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path
