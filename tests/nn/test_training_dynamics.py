"""End-to-end learning behaviour of the NN substrate.

Gradient checks prove the backward passes are *correct*; these tests prove
the substrate actually *learns*: small networks trained on synthetic tasks
must reach known performance, and train/eval mode switching must behave.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    bce_with_logits,
    mse_loss,
)
from repro.nn.initializers import he_normal


def blob_classification_data(count=64, size=8, seed=0):
    """Images with a bright blob in the top or bottom half; label = half."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 0.1, size=(count, 1, size, size)).astype(np.float32)
    y = np.zeros((count, 1), dtype=np.float32)
    for i in range(count):
        top = rng.uniform() < 0.5
        row = int(rng.integers(0, size // 2)) + (0 if top else size // 2)
        col = int(rng.integers(0, size - 2))
        x[i, 0, row, col : col + 2] += 2.0
        y[i, 0] = 0.0 if top else 1.0
    return x, y


def make_classifier(seed=1):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(1, 8, 3, 1, rng, weight_init=he_normal),
            ReLU(),
            BatchNorm(8),
            MaxPool2D(2),
            Flatten(),
            Dense(8 * 4 * 4, 1, rng),
        ]
    )


class TestConvNetLearnsClassification:
    def test_reaches_high_train_accuracy(self):
        x, y = blob_classification_data()
        net = make_classifier()
        optimizer = Adam(net.parameters(), learning_rate=5e-3)
        rng = np.random.default_rng(2)
        for _ in range(60):
            order = rng.permutation(len(x))
            for start in range(0, len(x), 16):
                idx = order[start : start + 16]
                optimizer.zero_grad()
                logits = net.forward(x[idx], training=True)
                _, grad = bce_with_logits(logits, y[idx])
                net.backward(grad)
                optimizer.step()
        logits = net.forward(x, training=False)
        accuracy = ((logits > 0) == (y > 0.5)).mean()
        assert accuracy > 0.95

    def test_loss_decreases(self):
        x, y = blob_classification_data(count=32)
        net = make_classifier(seed=3)
        optimizer = Adam(net.parameters(), learning_rate=5e-3)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            logits = net.forward(x, training=True)
            value, grad = bce_with_logits(logits, y)
            losses.append(value)
            net.backward(grad)
            optimizer.step()
        assert losses[-1] < 0.5 * losses[0]


class TestOptimizerComparison:
    def _train(self, optimizer_factory, steps=80):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        w_true = np.array([[1.0], [-1.0], [0.5], [2.0]], dtype=np.float32)
        y = x @ w_true
        net = Sequential([Dense(4, 1, np.random.default_rng(5))])
        optimizer = optimizer_factory(net.parameters())
        for _ in range(steps):
            optimizer.zero_grad()
            value, grad = mse_loss(net.forward(x, training=True), y)
            net.backward(grad)
            optimizer.step()
        return value

    def test_both_optimizers_fit_linear_task(self):
        adam_loss = self._train(lambda p: Adam(p, learning_rate=0.05))
        sgd_loss = self._train(lambda p: SGD(p, 0.05, momentum=0.9))
        assert adam_loss < 0.05
        assert sgd_loss < 0.05


class TestModeSwitching:
    def test_eval_prediction_stable_across_calls(self):
        x, y = blob_classification_data(count=16)
        net = make_classifier(seed=6)
        net.forward(x, training=True)  # seed BN stats
        a = net.forward(x, training=False)
        b = net.forward(x, training=False)
        assert np.array_equal(a, b)

    def test_training_flag_does_not_leak_into_eval(self):
        """Eval outputs must not change just because training ran between."""
        x, y = blob_classification_data(count=16)
        net = make_classifier(seed=7)
        net.forward(x, training=True)
        before = net.forward(x, training=False)
        # A forward pass in eval mode must not update running stats.
        net.forward(x * 5.0, training=False)
        after = net.forward(x, training=False)
        assert np.allclose(before, after)
