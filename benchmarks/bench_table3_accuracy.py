"""Table 3: accuracy comparison of Ref-[12], CGAN, and LithoGAN on N10/N7.

Regenerates the paper's Table 3 rows (EDE mean/std, pixel accuracy, class
accuracy, mean IoU) plus the Section 4.1 center-prediction error, prints
them, and writes ``artifacts/table3.txt``.  The benchmarked operation is the
metric sweep itself.

Shape expectations (DESIGN.md section 6): Ref-[12] <= LithoGAN on EDE, and
LithoGAN beats plain CGAN on every metric.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.eval import evaluate_predictions, format_table3
from repro.metrics import center_error_nm


def _summaries(bundle):
    summaries = []
    for method, predicted in bundle.predictions.items():
        centers = (
            bundle.predicted_centers if method == "LithoGAN" else None
        )
        _, summary = evaluate_predictions(
            method,
            bundle.golden,
            predicted,
            bundle.nm_per_px,
            golden_centers=bundle.test.centers if centers is not None else None,
            predicted_centers=centers,
        )
        summaries.append(summary)
    return summaries


def test_table3(bundle_n10, bundle_n7, artifact_dir, benchmark):
    lines = []
    by_method = {}
    for bundle, name in ((bundle_n10, "N10"), (bundle_n7, "N7")):
        summaries = _summaries(bundle)
        lines.extend(format_table3(name, summaries))
        center_error = center_error_nm(
            bundle.test.centers, bundle.predicted_centers, bundle.nm_per_px
        )
        lines.append(
            f"{name:<8} LithoGAN center prediction error: "
            f"{center_error:.2f} nm (paper: 0.43 / 0.37 nm at 0.5 nm/px scale)"
        )
        lines.append("")
        by_method[name] = {s.method: s for s in summaries}

    write_artifact(artifact_dir, "table3.txt", lines)

    # Shape assertions: the orderings the paper's Table 3 establishes.
    for name in ("N10", "N7"):
        ref12 = by_method[name]["Ref. [12]"]
        cgan = by_method[name]["CGAN"]
        litho = by_method[name]["LithoGAN"]
        assert ref12.ede_mean_nm <= litho.ede_mean_nm + 0.25, (
            f"{name}: Ref-[12] should be the most accurate flow"
        )
        assert litho.ede_mean_nm < cgan.ede_mean_nm, (
            f"{name}: LithoGAN must beat plain CGAN on EDE"
        )
        assert litho.mean_iou >= cgan.mean_iou - 0.005
        # Section 4.2's acceptability budget: 10% of the half pitch.
        budget = 0.1 * bundle_n10.config.tech.half_pitch_nm
        assert litho.cd_error_mean_nm < budget, (
            f"{name}: CD error {litho.cd_error_mean_nm:.2f} nm exceeds the "
            f"10%-of-half-pitch budget ({budget:.2f} nm)"
        )

    # The benchmarked operation: a full metric sweep over one test set.
    benchmark(
        evaluate_predictions,
        "LithoGAN",
        bundle_n10.golden,
        bundle_n10.predictions["LithoGAN"],
        bundle_n10.nm_per_px,
    )
