"""Sum-of-coherent-systems (SOCS) decomposition of the TCC.

The Hermitian TCC matrix factors as ``T = sum_k w_k v_k v_k^H`` with
``w_k >= 0``.  Each eigenvector ``v_k``, scattered back onto the FFT grid,
is the transfer function of one *coherent* system; the partially coherent
aerial image is then

    I(x) = sum_k w_k | IFFT( FFT(mask) * H_k ) |^2 .

Keeping the top-K eigenpairs (K = ``OpticalConfig.num_kernels``) is the
standard compact-model speedup: the spectrum decays fast, so a handful of
kernels captures nearly all the energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OpticsError
from .tcc import TccModel


@dataclass(frozen=True)
class SocsKernels:
    """Truncated coherent-kernel set from one TCC eigendecomposition."""

    #: (K, N, N) complex transfer functions on the FFT grid
    spectra: np.ndarray
    #: (K,) non-negative kernel weights (TCC eigenvalues), descending
    weights: np.ndarray
    grid_size: int
    extent_nm: float
    #: fraction of total TCC trace captured by the retained kernels
    energy_captured: float

    def __post_init__(self) -> None:
        if self.spectra.ndim != 3:
            raise OpticsError(f"spectra must be (K, N, N), got {self.spectra.shape}")
        k, n, n2 = self.spectra.shape
        if n != n2 or n != self.grid_size:
            raise OpticsError("kernel spectra do not match the grid size")
        if self.weights.shape != (k,):
            raise OpticsError("weights must have one entry per kernel")
        if np.any(self.weights < -1e-12):
            raise OpticsError("kernel weights must be non-negative")
        if np.any(np.diff(self.weights) > 1e-12):
            raise OpticsError("kernel weights must be sorted descending")

    @property
    def num_kernels(self) -> int:
        return int(self.weights.size)

    def aerial_image(self, transmission: np.ndarray) -> np.ndarray:
        """Aerial intensity for a scalar mask-transmission map."""
        if transmission.shape != (self.grid_size, self.grid_size):
            raise OpticsError(
                f"transmission shape {transmission.shape} does not match "
                f"grid size {self.grid_size}"
            )
        mask_spectrum = np.fft.fft2(transmission)
        intensity = np.zeros_like(transmission, dtype=np.float64)
        for weight, spectrum in zip(self.weights, self.spectra):
            field = np.fft.ifft2(mask_spectrum * spectrum)
            intensity += weight * np.abs(field) ** 2
        return intensity


def decompose_tcc(tcc: TccModel, num_kernels: int) -> SocsKernels:
    """Eigendecompose a TCC matrix into its top-K coherent kernels."""
    if num_kernels < 1:
        raise OpticsError(f"num_kernels must be >= 1, got {num_kernels}")
    eigenvalues, eigenvectors = np.linalg.eigh(tcc.matrix)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]

    k = min(num_kernels, eigenvalues.size)
    kept = np.clip(eigenvalues[:k], 0.0, None)
    total = float(np.clip(eigenvalues, 0.0, None).sum())
    energy = float(kept.sum() / total) if total > 0 else 0.0

    n = tcc.grid_size
    spectra = np.zeros((k, n, n), dtype=np.complex128)
    kx = tcc.freq_indices[:, 0] % n
    ky = tcc.freq_indices[:, 1] % n
    for i in range(k):
        # FFT convention: axis 0 is y (rows), axis 1 is x (columns).
        spectra[i, ky, kx] = eigenvectors[:, i]

    return SocsKernels(
        spectra=spectra,
        weights=kept,
        grid_size=n,
        extent_nm=tcc.extent_nm,
        energy_captured=energy,
    )
