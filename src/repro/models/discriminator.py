"""The CGAN discriminator: Table 1's pair classifier.

The discriminator sees the mask image and a resist image concatenated along
channels (6 channels at paper scale) and emits one real/fake logit.  At 256
px it matches Table 1: Conv-LReLU 64, then Conv-BN-LReLU 128/256/512 (each
halving the resolution down to 16x16), then a fully connected layer to a
single unit.  The sigmoid lives inside the BCE-with-logits loss.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import ConfigError
from ..nn import BatchNorm, Conv2D, Dense, Flatten, LeakyReLU, Sequential


def discriminator_input_channels(config: ModelConfig) -> int:
    """Mask channels plus resist channels (the (x, y) pair)."""
    return config.mask_channels + config.resist_channels


def build_discriminator(config: ModelConfig,
                        rng: np.random.Generator) -> Sequential:
    """Construct the Table 1 discriminator for a model configuration.

    Four stride-2 convolutions with widths (w, 2w, 4w, 8w) reduce the image
    by 16x; the paper's 'Filter' column prints stride 1 for the last one but
    its own output column shows 32x32 -> 16x16, so stride 2 is what the
    shapes require and what we build.
    """
    if config.image_size < 16:
        raise ConfigError(
            f"image_size {config.image_size} is too small for the discriminator"
        )
    k = config.kernel_size
    w = config.base_filters
    widths = (w, 2 * w, 4 * w, 8 * w)
    layers = []
    in_channels = discriminator_input_channels(config)
    for i, width in enumerate(widths):
        layers.append(Conv2D(in_channels, width, k, 2, rng, name=f"disc{i}"))
        if i > 0:
            layers.append(BatchNorm(width, name=f"disc{i}.bn"))
        layers.append(LeakyReLU(config.leaky_slope))
        in_channels = width

    final_spatial = config.image_size // 16
    layers.append(Flatten())
    layers.append(
        Dense(in_channels * final_spatial * final_spatial, 1, rng, name="disc_fc")
    )
    return Sequential(layers, name="discriminator")
