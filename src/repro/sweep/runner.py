"""The sweep supervisor: journaled trial execution with bounded retries.

:class:`SweepSupervisor` walks a :class:`~repro.sweep.spec.SweepSpec` trial
by trial, journaling every decision before acting on it.  One trial attempt
runs either inline (``isolation="none"``) or inside a one-task
:class:`~repro.runtime.parallel.WorkerPool` (``"thread"`` / ``"process"``),
which is what makes a wall-clock ``trial_timeout_s`` enforceable — a hung
trial surfaces as a :class:`~repro.errors.ParallelError` with
``kind="timeout"`` instead of wedging the sweep.

Failures are classified, not parsed: a :class:`~repro.errors.TrainingError`
is ``diverged``, a timeout-kind :class:`~repro.errors.ParallelError` is
``timeout``, any other worker failure is ``worker_death``.  Each failed
attempt retries on the deterministic exponential backoff of
:class:`~repro.runtime.retry.RetrySchedule` (shared with in-trial
divergence recovery); a trial whose retries are exhausted is marked failed
and **its siblings keep running** — until more than
``max_failed_trials`` trials have failed, at which point the sweep fails
closed with a :class:`~repro.errors.SweepError` naming every failed trial
digest.  ``KeyboardInterrupt`` journals the in-flight trial as
``interrupted`` and re-raises, so a Ctrl-C'd sweep resumes cleanly.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ParallelError, SweepError, TrainingError
from ..runtime.parallel import WorkerPool
from ..runtime.retry import RetrySchedule
from .journal import JOURNAL_NAME, SweepJournal, read_journal, replay_journal
from .spec import SweepSpec, TrialSpec

__all__ = [
    "SweepResult",
    "SweepSupervisor",
    "TrialResult",
    "classify_failure",
    "run_default_trial",
]

#: wall-clock ceiling handed to isolation pools when no trial timeout is
#: configured (the pool requires a positive bound; one day is "unbounded"
#: for any trial this repo can express)
_UNBOUNDED_TIMEOUT_S = 86_400.0


def classify_failure(exc: BaseException) -> str:
    """Map a trial failure onto its machine-readable reason tag."""
    if isinstance(exc, ParallelError):
        return "timeout" if exc.kind == "timeout" else "worker_death"
    if isinstance(exc, TrainingError):
        return "diverged"
    return "error"


def run_default_trial(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The standard trial body: mint, train, evaluate, save weights.

    Module-level (picklable) so ``isolation="process"`` works out of the
    box.  Trials run with ``recovery=None``: a single non-finite loss is an
    immediate :class:`~repro.errors.TrainingError`, because the sweep-level
    retry *is* the recovery — one supervisor owns the retry budget instead
    of two nested ones fighting.
    """
    from .. import api  # local import: api re-exports this module

    config = payload["config"]
    trial_dir = Path(payload["trial_dir"])
    faults = payload.get("faults")
    minted = api.mint(config, faults=faults)
    trained = api.train(
        config, minted.dataset, recovery=None, faults=faults,
        out=trial_dir / "model",
    )
    scored = api.evaluate(config, minted.dataset, trained.model)
    return {"metrics": scored.row, "weights": str(trial_dir / "model")}


@dataclasses.dataclass(frozen=True)
class TrialResult:
    """One trial's terminal outcome, as the journal records it."""

    index: int
    name: str
    digest: str
    params: Dict[str, Any]
    status: str               # "completed" | "failed"
    attempts: int
    reason: str = ""          # failure classification, empty on success
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seconds: float = 0.0
    weights: Optional[str] = None
    #: True when this outcome was replayed from the journal, not re-run
    resumed: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "trial": self.name,
            "digest": self.digest,
            "params": dict(self.params),
            "status": self.status,
            "attempts": self.attempts,
            "reason": self.reason,
            "metrics": dict(self.metrics),
            "seconds": self.seconds,
            "weights": self.weights,
            "resumed": self.resumed,
        }


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """What a sweep produced: every trial's outcome plus provenance."""

    trials: Tuple[TrialResult, ...]
    digest: str
    journal: Path
    metric: str = "ede_mean_nm"
    #: the registry entry --publish-best created, when requested
    published: Optional[Any] = None

    @property
    def completed(self) -> Tuple[TrialResult, ...]:
        return tuple(t for t in self.trials if t.status == "completed")

    @property
    def failed(self) -> Tuple[TrialResult, ...]:
        return tuple(t for t in self.trials if t.status == "failed")

    def ranking(self, metric: Optional[str] = None
                ) -> Tuple[TrialResult, ...]:
        """Completed trials, best first (lower metric value is better)."""
        metric = metric or self.metric
        scored = [t for t in self.completed if metric in t.metrics]
        return tuple(sorted(
            scored, key=lambda t: (float(t.metrics[metric]), t.index)
        ))

    def best(self, metric: Optional[str] = None) -> TrialResult:
        ranked = self.ranking(metric)
        if not ranked:
            raise SweepError(
                f"no completed trial carries metric "
                f"{metric or self.metric!r}; cannot rank"
            )
        return ranked[0]

    def format_ranking(self, metric: Optional[str] = None) -> str:
        """The comparative ranking table ``repro sweep`` prints."""
        metric = metric or self.metric
        ranked = self.ranking(metric)
        unranked = [t for t in self.trials if t not in ranked]
        lines = [
            f"sweep {self.digest[:12]}: {len(self.completed)}/"
            f"{len(self.trials)} trials completed, ranked by {metric}"
        ]
        for place, trial in enumerate(ranked, start=1):
            params = ", ".join(
                f"{k}={v}" for k, v in sorted(trial.params.items())
            ) or "(base)"
            flags = " resumed" if trial.resumed else ""
            lines.append(
                f"  #{place} {trial.name}  {metric}="
                f"{float(trial.metrics[metric]):.4f}  "
                f"attempts={trial.attempts}{flags}  [{params}]"
            )
        for trial in unranked:
            lines.append(
                f"  -- {trial.name}  {trial.status}"
                + (f" ({trial.reason})" if trial.reason else "")
                + f"  attempts={trial.attempts}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "journal": str(self.journal),
            "metric": self.metric,
            "trials": [t.to_dict() for t in self.trials],
            "completed": len(self.completed),
            "failed": len(self.failed),
            "published": getattr(self.published, "label", None),
        }


class SweepSupervisor:
    """Executes one sweep under journaled, bounded-retry supervision.

    ``trial_fn(payload)`` is the trial body (default
    :func:`run_default_trial`); ``faults_for(index, attempt)`` builds the
    fault plan one attempt runs under (drills only).  ``sleep`` and
    ``clock`` are injectable so retry backoff and durations are testable
    without wall-clock waits; ``progress(message)`` receives the CLI's
    narration; ``hook`` gets the ``on_trial_*`` telemetry callbacks.
    """

    def __init__(self, spec: SweepSpec, sweep_dir: Union[str, Path], *,
                 trial_fn: Optional[Callable] = None,
                 faults_for: Optional[Callable] = None,
                 hook=None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 progress: Optional[Callable] = None) -> None:
        self.spec = spec
        self.sweep_dir = Path(sweep_dir)
        self.journal = SweepJournal(self.sweep_dir / JOURNAL_NAME)
        self.trial_fn = trial_fn if trial_fn is not None else run_default_trial
        self.faults_for = faults_for
        self.hook = hook
        self.sleep = sleep
        self.clock = clock
        self.progress = progress
        knobs = spec.base.sweep
        self.knobs = knobs
        self.schedule = RetrySchedule(
            max_retries=knobs.max_retries,
            base_delay_s=knobs.retry_delay_s,
            factor=knobs.retry_factor,
            max_delay_s=knobs.retry_max_delay_s,
        )

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # -- journal bootstrap ---------------------------------------------------

    def _bootstrap(self, resume: bool,
                   spec_payload: Optional[Dict[str, Any]]
                   ) -> Dict[str, Dict[str, Any]]:
        """Open or replay the journal; return completed trials by digest."""
        records = (read_journal(self.journal.path)
                   if self.journal.path.exists() else [])
        if records and not resume:
            raise SweepError(
                f"sweep journal {self.journal.path} already exists; "
                "pass resume=True (CLI: --resume) to continue it, or "
                "choose a fresh sweep directory"
            )
        if not records:
            self.journal.sweep_start(
                digest=self.spec.digest, trials=len(self.spec),
                spec=spec_payload or {},
            )
            return {}
        state = replay_journal(records)
        if state.sweep is None:
            raise SweepError(
                f"sweep journal {self.journal.path} has no sweep_start "
                "record; it was truncated at birth — start fresh"
            )
        if state.sweep.get("digest") != self.spec.digest:
            raise SweepError(
                f"sweep journal {self.journal.path} was written for sweep "
                f"{state.sweep.get('digest', '?')[:12]}, not "
                f"{self.spec.digest[:12]}; refusing to resume a different "
                "spec"
            )
        return state.completed()

    # -- execution -----------------------------------------------------------

    def _execute(self, trial: TrialSpec, attempt: int) -> Dict[str, Any]:
        """Run one attempt under the configured isolation."""
        faults = (self.faults_for(trial.index, attempt)
                  if self.faults_for is not None else None)
        payload = {
            "config": trial.config,
            "trial_dir": str(self.sweep_dir / "trials" / trial.name),
            "faults": faults,
        }
        if self.knobs.isolation == "none":
            return self.trial_fn(payload)
        timeout = self.knobs.trial_timeout_s
        # A fresh one-task pool per attempt: a timed-out or crashed pool is
        # closed by the failure path, and attempts must not share state.
        with WorkerPool(workers=1, backend=self.knobs.isolation,
                        timeout_s=timeout if timeout is not None
                        else _UNBOUNDED_TIMEOUT_S) as pool:
            return pool.map(
                self.trial_fn, [payload], task=f"trial:{trial.name}",
            )[0]

    def _run_trial(self, trial: TrialSpec) -> TrialResult:
        """Supervise one trial to a terminal state (never raises for a
        trial-local failure; only ``KeyboardInterrupt`` escapes)."""
        attempt = 0
        started = self.clock()
        while True:
            attempt += 1
            self.journal.trial_start(
                digest=trial.digest, trial=trial.name, index=trial.index,
                attempt=attempt,
            )
            if self.hook is not None:
                self.hook.on_trial_start(trial.digest, trial.name, attempt)
            try:
                outcome = self._execute(trial, attempt)
            except KeyboardInterrupt:
                seconds = self.clock() - started
                self.journal.trial_end(
                    digest=trial.digest, trial=trial.name,
                    status="interrupted", attempts=attempt,
                    reason="interrupted", seconds=seconds,
                )
                if self.hook is not None:
                    self.hook.on_trial_end(
                        trial.digest, trial.name, "interrupted", attempt,
                        reason="interrupted", seconds=seconds,
                    )
                raise
            except Exception as exc:  # noqa: BLE001 — classified below
                reason = classify_failure(exc)
                if self.schedule.exhausted(attempt):
                    seconds = self.clock() - started
                    self.journal.trial_end(
                        digest=trial.digest, trial=trial.name,
                        status="failed", attempts=attempt, reason=reason,
                        seconds=seconds,
                    )
                    if self.hook is not None:
                        self.hook.on_trial_end(
                            trial.digest, trial.name, "failed", attempt,
                            reason=reason, seconds=seconds,
                        )
                    self._say(
                        f"{trial.name}: FAILED ({reason}) after "
                        f"{attempt} attempt(s): {exc}"
                    )
                    return TrialResult(
                        index=trial.index, name=trial.name,
                        digest=trial.digest, params=trial.params,
                        status="failed", attempts=attempt, reason=reason,
                        seconds=seconds,
                    )
                delay = self.schedule.delay_s(attempt)
                self.journal.trial_retry(
                    digest=trial.digest, trial=trial.name, attempt=attempt,
                    reason=reason, delay_s=delay,
                )
                if self.hook is not None:
                    self.hook.on_trial_retry(
                        trial.digest, trial.name, attempt, reason, delay,
                    )
                self._say(
                    f"{trial.name}: attempt {attempt} failed ({reason}); "
                    f"retrying in {delay:g}s"
                )
                self.sleep(delay)
                continue
            seconds = self.clock() - started
            metrics = dict(outcome.get("metrics") or {})
            weights = outcome.get("weights")
            self.journal.trial_end(
                digest=trial.digest, trial=trial.name, status="completed",
                attempts=attempt, seconds=seconds, metrics=metrics,
                weights=weights,
            )
            if self.hook is not None:
                self.hook.on_trial_end(
                    trial.digest, trial.name, "completed", attempt,
                    seconds=seconds,
                )
            self._say(
                f"{trial.name}: completed in {seconds:.2f}s "
                f"({attempt} attempt(s))"
            )
            return TrialResult(
                index=trial.index, name=trial.name, digest=trial.digest,
                params=trial.params, status="completed", attempts=attempt,
                metrics=metrics, seconds=seconds, weights=weights,
            )

    def run(self, *, resume: bool = False,
            spec_payload: Optional[Dict[str, Any]] = None
            ) -> List[TrialResult]:
        """Run (or resume) the sweep; returns every trial's outcome.

        Completed trials found in the journal are **not** re-run — they come
        back as ``resumed=True`` results carrying their journaled metrics.
        Raises :class:`~repro.errors.SweepError` once more than
        ``max_failed_trials`` trials have failed; the journal still holds a
        ``trial_end`` for each, so a later resume retries exactly those.
        """
        done = self._bootstrap(resume, spec_payload)
        results: List[TrialResult] = []
        failed: List[str] = []
        for trial in self.spec.trials:
            record = done.get(trial.digest)
            if record is not None:
                self._say(f"{trial.name}: already completed (journal); "
                          "skipping")
                results.append(TrialResult(
                    index=trial.index, name=trial.name, digest=trial.digest,
                    params=trial.params, status="completed",
                    attempts=int(record.get("attempts") or 0),
                    metrics=dict(record.get("metrics") or {}),
                    seconds=float(record.get("seconds") or 0.0),
                    weights=record.get("weights"),
                    resumed=True,
                ))
                continue
            result = self._run_trial(trial)
            results.append(result)
            if result.status == "failed":
                failed.append(result.digest)
                if len(failed) > self.knobs.max_failed_trials:
                    raise SweepError(
                        f"sweep failure budget exhausted: {len(failed)} "
                        f"trial(s) failed (allowed "
                        f"{self.knobs.max_failed_trials}); failed digests: "
                        + ", ".join(d[:12] for d in failed),
                        failed=failed,
                    )
        return results
