"""Process-window analysis: Bossung curves, DOF, exposure latitude."""

import numpy as np
import pytest

from repro.config import N10, reduced
from repro.errors import EvaluationError
from repro.layout import ArrayType, build_mask_layout, generate_clip
from repro.sim import ProcessWindowResult, sweep_process_window
from repro.sim.process_window import _contiguous_span


@pytest.fixture(scope="module")
def config():
    return reduced(N10, num_clips=1)


@pytest.fixture(scope="module")
def layout(config):
    clip = generate_clip(
        config.tech, np.random.default_rng(5), array_type=ArrayType.ISOLATED
    )
    return build_mask_layout(clip)


@pytest.fixture(scope="module")
def window(layout, config):
    return sweep_process_window(
        layout,
        config,
        doses=(0.85, 1.0, 1.15),
        defocuses_nm=(-80.0, 0.0, 80.0),
    )


class TestSweep:
    def test_matrix_shape(self, window):
        assert window.cd_nm.shape == (3, 3)

    def test_nominal_cd_is_contact_scale(self, window):
        assert 30 < window.nominal_cd_nm < 130

    def test_dose_monotonicity(self, window):
        """More dose clears more resist: CD grows with dose at best focus."""
        cds = window.cd_nm[:, 1]
        finite = cds[np.isfinite(cds)]
        assert np.all(np.diff(finite) > 0)

    def test_defocus_shrinks_cd(self, window):
        """Defocus lowers peak intensity, shrinking the printed contact."""
        nominal = window.cd_nm[1, 1]
        defocused = window.cd_nm[1, 0]
        if np.isfinite(defocused):
            assert defocused < nominal

    def test_bossung_curve(self, window):
        defocus, cds = window.bossung_curve(1.0)
        assert len(defocus) == len(cds) == 3
        assert np.array_equal(defocus, window.defocuses_nm)

    def test_validation(self, layout, config):
        with pytest.raises(EvaluationError):
            sweep_process_window(layout, config, doses=())
        with pytest.raises(EvaluationError):
            sweep_process_window(layout, config, doses=(0.0, 1.0))


class TestWindowMetrics:
    def test_within_tolerance_center_true(self, window):
        good = window.within_tolerance(0.10)
        assert good[1, 1]  # nominal condition is within its own tolerance

    def test_depth_of_focus_nonnegative(self, window):
        dof = window.depth_of_focus_nm(dose=1.0, tolerance=0.10)
        assert dof >= 0.0

    def test_wider_tolerance_wider_window(self, window):
        narrow = window.within_tolerance(0.02).sum()
        wide = window.within_tolerance(0.25).sum()
        assert wide >= narrow

    def test_exposure_latitude(self, window):
        latitude = window.exposure_latitude(defocus_nm=0.0, tolerance=0.25)
        assert latitude >= 0.0

    def test_result_shape_validation(self):
        with pytest.raises(EvaluationError):
            ProcessWindowResult(
                doses=np.array([1.0]),
                defocuses_nm=np.array([0.0, 10.0]),
                cd_nm=np.zeros((2, 2)),
                nominal_cd_nm=60.0,
            )


class TestContiguousSpan:
    def test_full_run(self):
        axis = np.array([0.0, 1.0, 2.0, 3.0])
        assert _contiguous_span(axis, np.array([True] * 4)) == 3.0

    def test_split_runs_take_longest(self):
        axis = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        good = np.array([True, True, False, True, True, True])
        assert _contiguous_span(axis, good) == 2.0

    def test_no_good_points(self):
        assert _contiguous_span(np.array([0.0, 1.0]), np.array([False, False])) == 0.0

    def test_single_point(self):
        assert _contiguous_span(np.array([0.0, 1.0]), np.array([True, False])) == 0.0
