"""Optimizers: SGD and Adam convergence and bookkeeping."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import SGD, Adam, Parameter


def quadratic_grad(param, target):
    """Gradient of 0.5 * ||p - target||^2."""
    return param.value - target


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([param], learning_rate=0.1)
        param.add_grad(np.array([2.0], dtype=np.float32))
        optimizer.step()
        assert param.value[0] == pytest.approx(0.8)

    def test_momentum_accelerates(self):
        target = np.array([3.0], dtype=np.float32)
        plain = Parameter(np.zeros(1, dtype=np.float32))
        momentum = Parameter(np.zeros(1, dtype=np.float32))
        opt_plain = SGD([plain], 0.05)
        opt_momentum = SGD([momentum], 0.05, momentum=0.9)
        for _ in range(20):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                param.add_grad(quadratic_grad(param, target))
                opt.step()
        assert abs(momentum.value[0] - 3) < abs(plain.value[0] - 3)

    def test_skips_frozen_params(self):
        param = Parameter(np.ones(1, dtype=np.float32), trainable=False)
        optimizer = SGD([param], 0.5)
        param.add_grad(np.ones(1, dtype=np.float32))
        optimizer.step()
        assert param.value[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(TrainingError):
            SGD([], 0.1)

    def test_bad_momentum_rejected(self):
        with pytest.raises(TrainingError):
            SGD([Parameter(np.zeros(1))], 0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([2.0, -1.0], dtype=np.float32)
        param = Parameter(np.zeros(2, dtype=np.float32))
        optimizer = Adam([param], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            param.add_grad(quadratic_grad(param, target))
            optimizer.step()
        assert np.allclose(param.value, target, atol=1e-2)

    def test_bias_correction_first_step(self):
        """First Adam step moves by ~lr regardless of gradient scale."""
        for scale in (1e-3, 1.0, 1e3):
            param = Parameter(np.zeros(1, dtype=np.float32))
            optimizer = Adam([param], learning_rate=0.01)
            param.add_grad(np.array([scale], dtype=np.float32))
            optimizer.step()
            assert abs(param.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_paper_betas_accepted(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        Adam([param], learning_rate=2e-4, beta1=0.5, beta2=0.999)

    def test_bad_betas_rejected(self):
        with pytest.raises(TrainingError):
            Adam([Parameter(np.zeros(1))], 0.1, beta1=1.0)

    def test_zero_grad_clears(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        optimizer = Adam([param], 0.1)
        param.add_grad(np.ones(3, dtype=np.float32))
        optimizer.zero_grad()
        assert np.array_equal(param.grad, np.zeros(3))


class TestParameter:
    def test_add_grad_accumulates(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.add_grad(np.ones(2, dtype=np.float32))
        param.add_grad(np.ones(2, dtype=np.float32))
        assert np.array_equal(param.grad, 2 * np.ones(2))

    def test_add_grad_shape_checked(self):
        from repro.errors import ShapeError

        param = Parameter(np.zeros(2, dtype=np.float32))
        with pytest.raises(ShapeError):
            param.add_grad(np.ones(3, dtype=np.float32))


class TestOptimizerState:
    def _params(self, seed=0):
        rng = np.random.default_rng(seed)
        return [
            Parameter(rng.normal(size=(3, 2)).astype(np.float32)),
            Parameter(rng.normal(size=(2,)).astype(np.float32)),
        ]

    def _step(self, opt, params, seed):
        rng = np.random.default_rng(seed)
        for p in params:
            p.zero_grad()
            p.add_grad(rng.normal(size=p.value.shape).astype(np.float32))
        opt.step()

    def test_adam_roundtrip_continues_identically(self):
        params_a = self._params()
        params_b = self._params()
        a = Adam(params_a, learning_rate=1e-2)
        b = Adam(params_b, learning_rate=5.0)  # wrong lr, to be overwritten
        self._step(a, params_a, 1)
        self._step(a, params_a, 2)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(params_a, params_b):
            pb.value[:] = pa.value
        assert b.learning_rate == a.learning_rate
        self._step(a, params_a, 3)
        self._step(b, params_b, 3)
        for pa, pb in zip(params_a, params_b):
            assert np.array_equal(pa.value, pb.value)

    def test_adam_state_requires_step_count(self):
        params = self._params()
        opt = Adam(params)
        with pytest.raises(TrainingError, match="'t'"):
            opt.load_state_dict({})

    def test_adam_shape_mismatch_rejected(self):
        params = self._params()
        opt = Adam(params)
        self._step(opt, params, 1)
        state = opt.state_dict()
        state["m0"] = np.zeros((9, 9))
        with pytest.raises(TrainingError, match="shape"):
            Adam(self._params()).load_state_dict(state)

    def test_sgd_momentum_roundtrip(self):
        params_a = self._params()
        params_b = self._params()
        a = SGD(params_a, learning_rate=1e-2, momentum=0.9)
        b = SGD(params_b, learning_rate=1e-2, momentum=0.9)
        self._step(a, params_a, 1)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(params_a, params_b):
            pb.value[:] = pa.value
        self._step(a, params_a, 2)
        self._step(b, params_b, 2)
        for pa, pb in zip(params_a, params_b):
            assert np.array_equal(pa.value, pb.value)

    def test_sgd_missing_velocity_key_rejected(self):
        params = self._params()
        opt = SGD(params, learning_rate=1e-2, momentum=0.9)
        self._step(opt, params, 1)
        state = opt.state_dict()
        state["velocity0"] = np.zeros((7,))
        with pytest.raises(TrainingError, match="shape"):
            SGD(self._params(), 1e-2, momentum=0.9).load_state_dict(state)
