"""Critical-dimension (CD) measurement and error.

Section 4.2 judges LithoGAN acceptable because its average CD error stays
within 10% of the contact half-pitch.  CD is measured on the pattern's
center cutlines: the printed width along the horizontal line through the
pattern center and the height along the vertical line, in nm.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

from ..errors import EvaluationError
from ..geometry import bounding_box_of_mask


def measure_cd_nm(image: np.ndarray, nm_per_px: float) -> Tuple[float, float]:
    """(horizontal CD, vertical CD) through the pattern's bbox center, nm.

    Measured on the *largest* printed blob so stray pixels from secondary
    blobs neither move the cutlines nor inflate the run length.
    """
    if nm_per_px <= 0:
        raise EvaluationError(f"nm_per_px must be positive, got {nm_per_px}")
    binary = image >= 0.5
    labels, count = ndimage.label(binary)
    if count == 0:
        raise EvaluationError("cannot measure CD of an empty pattern")
    if count > 1:
        sizes = ndimage.sum_labels(binary, labels, index=range(1, count + 1))
        image = (labels == (1 + int(np.argmax(sizes)))).astype(np.float64)
    box = bounding_box_of_mask(image)
    rlo, clo, rhi, chi = box
    row = int((rlo + rhi - 1) // 2)
    col = int((clo + chi - 1) // 2)
    return (
        _center_run_length(image[row, :] >= 0.5, col) * nm_per_px,
        _center_run_length(image[:, col] >= 0.5, row) * nm_per_px,
    )


def _center_run_length(line: np.ndarray, index: int) -> int:
    """Length of the contiguous True run containing ``index`` (0 if False)."""
    if not line[index]:
        return 0
    lo = index
    while lo > 0 and line[lo - 1]:
        lo -= 1
    hi = index
    while hi < line.size - 1 and line[hi + 1]:
        hi += 1
    return hi - lo + 1


def cd_error_nm(golden: np.ndarray, predicted: np.ndarray,
                nm_per_px: float) -> float:
    """Mean absolute CD error over both cut directions, nm."""
    golden_cd = measure_cd_nm(golden, nm_per_px)
    if not np.any(predicted >= 0.5):
        # An empty prediction misses the whole feature.
        return float(np.mean(golden_cd))
    predicted_cd = measure_cd_nm(predicted, nm_per_px)
    return float(
        np.mean([abs(g - p) for g, p in zip(golden_cd, predicted_cd)])
    )
