"""Max pooling (2x2 stride 2 is what Table 2 uses; any equal size/stride works)."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from .base import Layer


class MaxPool2D(Layer):
    """Non-overlapping max pooling: ``size == stride``."""

    op_name = "P"

    def __init__(self, size: int = 2):
        if size < 2:
            raise ShapeError(f"pool size must be >= 2, got {size}")
        self.size = size
        self._cache = None

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        if h % self.size or w % self.size:
            raise ShapeError(
                f"input {h}x{w} is not divisible by pool size {self.size}"
            )
        return (c, h // self.size, w // self.size)

    def describe(self) -> str:
        return f"{self.size}x{self.size},{self.size}"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ShapeError(f"input {h}x{w} is not divisible by pool size {s}")
        windows = x.reshape(n, c, h // s, s, w // s, s)
        out = windows.max(axis=(3, 5))
        # Gradient routing mask; ties split the gradient evenly.
        expanded = out[:, :, :, None, :, None]
        mask = (windows == expanded).astype(np.float32)
        counts = mask.sum(axis=(3, 5), keepdims=True)
        self._cache = (mask / counts, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask, x_shape = self._require_cache(self._cache)
        n, c, h, w = x_shape
        s = self.size
        grad_windows = grad[:, :, :, None, :, None] * mask
        return grad_windows.reshape(n, c, h, w)
