"""Shape adapters."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from .base import Layer


class Flatten(Layer):
    """(N, C, H, W) -> (N, C*H*W)."""

    op_name = "Flatten"

    def __init__(self):
        self._shape = None

    def output_shape(self, input_shape: tuple) -> tuple:
        total = 1
        for dim in input_shape:
            total *= dim
        return (total,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim < 2:
            raise ShapeError(f"expected a batched tensor, got shape {x.shape}")
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._shape, "shape")
        return grad.reshape(shape)
