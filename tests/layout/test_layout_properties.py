"""Design-rule property tests over many random layouts (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import N7, N10
from repro.layout import (
    SrafRules,
    build_mask_layout,
    generate_clip,
    insert_srafs,
)
from repro.layout.sraf import check_sraf_rules


class TestClipInvariants:
    @given(seed=st.integers(0, 500), tech=st.sampled_from([N10, N7]))
    @settings(max_examples=30, deadline=None)
    def test_generated_clips_satisfy_drc(self, seed, tech):
        clip = generate_clip(tech, np.random.default_rng(seed))
        # Target near the clip center within the registration tolerance.
        mid = tech.cropped_clip_nm / 2
        tolerance = 4 * tech.registration_sigma_nm
        assert abs(clip.target.center.x - mid) <= tolerance
        assert abs(clip.target.center.y - mid) <= tolerance
        # No neighbor overlaps the target, and all are inside the clip.
        for neighbor in clip.neighbors:
            assert not neighbor.intersects(clip.target)
            assert 0 <= neighbor.xlo and neighbor.xhi <= tech.cropped_clip_nm
            assert 0 <= neighbor.ylo and neighbor.yhi <= tech.cropped_clip_nm

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_srafs_always_rule_clean(self, seed):
        clip = generate_clip(N10, np.random.default_rng(seed))
        rules = SrafRules.for_tech(N10)
        srafs = insert_srafs(clip, rules)
        check_sraf_rules(srafs, clip, rules)  # raises on any violation

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_opc_never_shrinks_contacts(self, seed):
        clip = generate_clip(N10, np.random.default_rng(seed))
        layout = build_mask_layout(clip)
        assert layout.target.width >= clip.target.width
        assert layout.target.height >= clip.target.height
        for drawn, corrected in zip(clip.neighbors, layout.neighbors):
            assert corrected.width >= drawn.width

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_layout_deterministic_per_seed(self, seed):
        a = build_mask_layout(generate_clip(N10, np.random.default_rng(seed)))
        b = build_mask_layout(generate_clip(N10, np.random.default_rng(seed)))
        assert a.target == b.target
        assert a.srafs == b.srafs
