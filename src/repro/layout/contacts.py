"""Contact-array clip synthesis.

The paper's benchmarks are contact-layer clips from [12]: each clip is a
2x2 um mask window cropped to 1x1 um so the *target* contact sits exactly at
the clip center, surrounded by neighboring contacts.  Per Section 4.1 the
dataset contains **three types of contact arrays**; we synthesize the three
canonical contact-layer neighborhoods:

``ISOLATED``
    The target contact with zero to two distant neighbors.
``DENSE_GRID``
    A regular rectangular array on (jittered) minimum pitch with random
    occupancy drop-out.
``STAGGERED``
    A checkerboard / staggered array where alternate rows shift by half a
    pitch.

All coordinates are nm with the clip spanning ``[0, cropped_clip_nm]^2`` and
the target centered at the midpoint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import TechnologyConfig
from ..errors import LayoutError
from ..geometry import Point, Rect


class ArrayType(enum.Enum):
    """The three contact-neighborhood families present in the dataset."""

    ISOLATED = "isolated"
    DENSE_GRID = "dense_grid"
    STAGGERED = "staggered"


@dataclass(frozen=True)
class ContactClip:
    """A drawn (pre-RET) contact clip: target at center plus neighbors."""

    tech: TechnologyConfig
    array_type: ArrayType
    target: Rect
    neighbors: tuple
    extent_nm: float

    def __post_init__(self) -> None:
        center = self.target.center
        mid = self.extent_nm / 2.0
        tolerance = max(1e-6, 4.0 * self.tech.registration_sigma_nm)
        if abs(center.x - mid) > tolerance or abs(center.y - mid) > tolerance:
            raise LayoutError(
                f"target contact must sit within {tolerance} nm of the clip "
                f"center ({mid}, {mid}), got ({center.x}, {center.y})"
            )
        for rect in self.neighbors:
            if rect.intersects(self.target):
                raise LayoutError("a neighbor contact overlaps the target")

    @property
    def all_contacts(self) -> List[Rect]:
        return [self.target, *self.neighbors]

    def min_neighbor_spacing(self) -> float:
        """Smallest edge-to-edge spacing between any two contacts."""
        contacts = self.all_contacts
        if len(contacts) < 2:
            return float("inf")
        return min(
            contacts[i].spacing_to(contacts[j])
            for i in range(len(contacts))
            for j in range(i + 1, len(contacts))
        )


def _clip_bounds(extent: float, size: float) -> Rect:
    """Region inside which contact centers may legally fall."""
    margin = size  # keep a full contact-width of clearance from the border
    return Rect(margin, margin, extent - margin, extent - margin)


def _place_grid(tech: TechnologyConfig, rng: np.random.Generator,
                staggered: bool) -> List[Rect]:
    """Place a (possibly staggered) array of neighbors around the center.

    With 50% probability the target sits at an array *edge or corner*: a
    random half-plane (or quadrant) of neighbor sites is removed.  Edge
    contacts see a strongly one-sided optical neighborhood, which is what
    drives the printed resist pattern off-center — the effect LithoGAN's
    center CNN exists to capture.
    """
    extent = tech.cropped_clip_nm
    mid = extent / 2.0
    size = tech.contact_size_nm
    pitch = tech.pitch_nm * float(rng.uniform(1.0, 1.6))
    occupancy = float(rng.uniform(0.55, 0.95))
    reach = int(rng.integers(1, 4))  # rows/cols of neighbors on each side
    bounds = _clip_bounds(extent, size)

    # Array-edge placement: drop sites in up to two random half-planes.
    drop_right = drop_left = drop_up = drop_down = False
    if rng.uniform() < 0.5:
        drop_right, drop_left = rng.uniform() < 0.5, False
        if not drop_right:
            drop_left = rng.uniform() < 0.7
        if rng.uniform() < 0.4:  # corner rather than edge
            drop_up, drop_down = rng.uniform() < 0.5, False
            if not drop_up:
                drop_down = True

    rects: List[Rect] = []
    for i in range(-reach, reach + 1):
        if (drop_up and i > 0) or (drop_down and i < 0):
            continue
        row_shift = (pitch / 2.0) if (staggered and i % 2) else 0.0
        for j in range(-reach, reach + 1):
            if (drop_right and j > 0) or (drop_left and j < 0):
                continue
            if i == 0 and j == 0 and not row_shift:
                continue  # that position is the target itself
            cx = mid + j * pitch + row_shift
            cy = mid + i * pitch
            if not bounds.contains_point(Point(cx, cy)):
                continue
            if rng.uniform() > occupancy:
                continue
            rect = Rect.from_center(cx, cy, size, size)
            if rect.intersects(Rect.from_center(mid, mid, size, size)):
                continue
            rects.append(rect)
    return rects


def _place_isolated(tech: TechnologyConfig, rng: np.random.Generator) -> List[Rect]:
    """Zero to two far-away neighbors, at least 2.5 pitches from center."""
    extent = tech.cropped_clip_nm
    mid = extent / 2.0
    size = tech.contact_size_nm
    bounds = _clip_bounds(extent, size)
    count = int(rng.integers(0, 3))
    rects: List[Rect] = []
    attempts = 0
    while len(rects) < count and attempts < 50:
        attempts += 1
        radius = float(rng.uniform(2.5, 5.0)) * tech.pitch_nm
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        cx = mid + radius * np.cos(angle)
        cy = mid + radius * np.sin(angle)
        if not bounds.contains_point(Point(cx, cy)):
            continue
        rect = Rect.from_center(cx, cy, size, size)
        if any(rect.spacing_to(other) < tech.pitch_nm - size for other in rects):
            continue
        rects.append(rect)
    return rects


def _registration_jitter(tech: TechnologyConfig,
                         rng: np.random.Generator) -> tuple:
    """Per-feature mask placement error, truncated at 3 sigma per axis."""
    sigma = tech.registration_sigma_nm
    if sigma == 0:
        return (0.0, 0.0)
    dx, dy = rng.normal(0.0, sigma, size=2)
    limit = 3.0 * sigma
    return (float(np.clip(dx, -limit, limit)), float(np.clip(dy, -limit, limit)))


def generate_clip(tech: TechnologyConfig, rng: np.random.Generator,
                  array_type: Optional[ArrayType] = None) -> ContactClip:
    """Synthesize one contact clip; the array type is drawn at random if None.

    Every contact (target included) receives independent mask-registration
    jitter.  The clip frame stays anchored at the target's *ideal* position,
    matching how the golden resist window is cropped.
    """
    if array_type is None:
        array_type = ArrayType(
            rng.choice([t.value for t in ArrayType])
        )
    extent = tech.cropped_clip_nm
    mid = extent / 2.0
    jx, jy = _registration_jitter(tech, rng)
    target = Rect.from_center(
        mid + jx, mid + jy, tech.contact_size_nm, tech.contact_size_nm
    )

    if array_type is ArrayType.ISOLATED:
        neighbors = _place_isolated(tech, rng)
    elif array_type is ArrayType.DENSE_GRID:
        neighbors = _place_grid(tech, rng, staggered=False)
    elif array_type is ArrayType.STAGGERED:
        neighbors = _place_grid(tech, rng, staggered=True)
    else:  # pragma: no cover - enum is exhaustive
        raise LayoutError(f"unknown array type {array_type}")

    jittered = []
    for rect in neighbors:
        nx, ny = _registration_jitter(tech, rng)
        moved = rect.translated(nx, ny)
        if moved.intersects(target):
            continue
        jittered.append(moved)

    return ContactClip(
        tech=tech,
        array_type=array_type,
        target=target,
        neighbors=tuple(jittered),
        extent_nm=extent,
    )


def generate_clips(tech: TechnologyConfig, rng: np.random.Generator,
                   count: Optional[int] = None,
                   array_types: Optional[Sequence[ArrayType]] = None) -> List[ContactClip]:
    """Synthesize ``count`` clips cycling through the three array types.

    Cycling (rather than sampling) keeps the type mix balanced, matching the
    paper's statement that all three array types appear in the benchmark.
    """
    if count is None:
        count = tech.num_clips
    if count < 1:
        raise LayoutError(f"count must be >= 1, got {count}")
    types = list(array_types) if array_types else list(ArrayType)
    return [
        generate_clip(tech, rng, array_type=types[i % len(types)])
        for i in range(count)
    ]
