"""The Ref-[12] optical-sim + threshold-CNN + contour baseline."""

import numpy as np
import pytest

from repro.baselines import Ref12Flow
from repro.errors import EvaluationError, TrainingError


@pytest.fixture(scope="module")
def flow(tiny_config):
    return Ref12Flow(tiny_config, np.random.default_rng(30))


@pytest.fixture(scope="module")
def aerial_windows(flow, tiny_dataset):
    return flow.compute_aerial_windows(tiny_dataset.masks)


class TestAerialReconstruction:
    def test_window_shape(self, aerial_windows, tiny_config, tiny_dataset):
        px = tiny_config.image.resist_image_px
        assert aerial_windows.shape == (len(tiny_dataset), px, px)

    def test_window_has_center_peak(self, aerial_windows):
        """The target contact lights up the middle of each window."""
        px = aerial_windows.shape[1]
        lo, hi = px // 4, 3 * px // 4
        for window in aerial_windows:
            center_max = window[lo:hi, lo:hi].max()
            assert center_max == pytest.approx(window.max(), rel=0.05)

    def test_bad_mask_shape_rejected(self, flow):
        with pytest.raises(EvaluationError):
            flow.aerial_from_mask_image(np.zeros((1, 8, 8)))


class TestGoldenThresholds:
    def test_thresholds_lie_on_aerial_range(
        self, flow, aerial_windows, tiny_dataset
    ):
        thresholds = flow.golden_thresholds(
            aerial_windows[0], tiny_dataset.resists[0, 0]
        )
        assert thresholds.shape == (4,)
        assert np.all(thresholds >= 0)
        assert np.all(thresholds <= aerial_windows[0].max() + 1e-9)

    def test_empty_golden_rejected(self, flow, aerial_windows):
        with pytest.raises(TrainingError):
            flow.golden_thresholds(
                aerial_windows[0], np.zeros_like(aerial_windows[0])
            )


class TestThresholdMap:
    def test_uniform_when_equal(self, flow):
        tmap = flow.threshold_map(np.full(4, 0.3, dtype=np.float32), 16)
        assert np.allclose(tmap, 0.3)

    def test_gradient_between_edges(self, flow):
        tmap = flow.threshold_map(
            np.array([0.2, 0.2, 0.1, 0.3], dtype=np.float32), 16
        )
        assert tmap[8, 0] < tmap[8, -1]  # left lower than right

    def test_wrong_count_rejected(self, flow):
        with pytest.raises(EvaluationError):
            flow.threshold_map(np.zeros(3, dtype=np.float32), 16)


class TestContourProcessing:
    def test_keeps_center_blob_only(self, flow):
        from scipy import ndimage

        aerial = np.zeros((32, 32))
        aerial[14:18, 14:18] = 1.0  # center blob
        aerial[2:5, 2:5] = 1.0      # stray corner blob
        binary = flow.contour_processing(aerial, np.full((32, 32), 0.5))
        _, count = ndimage.label(binary)
        assert count == 1
        assert binary[15, 15] == 1.0
        assert binary[3, 3] == 0.0

    def test_all_below_threshold_is_empty(self, flow):
        binary = flow.contour_processing(
            np.full((16, 16), 0.1), np.full((16, 16), 0.5)
        )
        assert binary.sum() == 0


class TestEndToEnd:
    def test_fit_and_predict(self, tiny_config, tiny_dataset):
        rng = np.random.default_rng(31)
        flow = Ref12Flow(tiny_config, rng)
        history = flow.fit(tiny_dataset, rng)
        assert len(history.loss) == tiny_config.training.aux_epochs
        predictions = flow.predict_resist(tiny_dataset.masks[:3])
        assert predictions.shape[0] == 3
        assert set(np.unique(predictions)) <= {0.0, 1.0}
        # The baseline sees the aerial image, so it should print something.
        assert predictions.sum() > 0

    def test_precomputed_windows_accepted(self, tiny_config, tiny_dataset):
        rng = np.random.default_rng(32)
        flow = Ref12Flow(tiny_config, rng)
        windows = flow.compute_aerial_windows(tiny_dataset.masks)
        flow.fit(tiny_dataset, rng, aerial_windows=windows)
        a = flow.predict_resist(tiny_dataset.masks, aerial_windows=windows)
        b = flow.predict_resist(tiny_dataset.masks)
        assert np.array_equal(a, b)
