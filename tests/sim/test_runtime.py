"""Stage-timer bookkeeping."""

import time

import pytest

from repro.sim import StageTimer, Tracer


class TestStageTimer:
    def test_accumulates(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("work"):
                time.sleep(0.001)
        assert timer.count("work") == 3
        assert timer.total("work") >= 0.003
        assert timer.mean("work") == timer.total("work") / 3

    def test_missing_stage_is_zero(self):
        timer = StageTimer()
        assert timer.total("nothing") == 0.0
        assert timer.count("nothing") == 0
        assert timer.mean("nothing") == 0.0

    def test_records_on_exception(self):
        timer = StageTimer()
        try:
            with timer.stage("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.count("risky") == 1

    def test_merge(self):
        a = StageTimer()
        b = StageTimer()
        with a.stage("x"):
            pass
        with b.stage("x"):
            pass
        with b.stage("y"):
            pass
        a.merge(b)
        assert a.count("x") == 2
        assert a.count("y") == 1

    def test_as_dict(self):
        timer = StageTimer()
        with timer.stage("only"):
            pass
        assert set(timer.as_dict()) == {"only"}

    def test_merge_disjoint_stage_names(self):
        a, b = StageTimer(), StageTimer()
        with a.stage("optical"):
            pass
        with b.stage("resist"):
            pass
        a.merge(b)
        assert set(a.as_dict()) == {"optical", "resist"}
        assert a.count("optical") == 1 and a.count("resist") == 1
        # the merge source is untouched
        assert set(b.as_dict()) == {"resist"}

    def test_merge_overlapping_stage_names_sums_totals(self):
        a, b = StageTimer(), StageTimer()
        with a.stage("optical"):
            time.sleep(0.001)
        with b.stage("optical"):
            time.sleep(0.001)
        total_a, total_b = a.total("optical"), b.total("optical")
        a.merge(b)
        assert a.count("optical") == 2
        assert a.total("optical") == pytest.approx(total_a + total_b)

    def test_merge_empty_timer_is_a_noop(self):
        timer = StageTimer()
        with timer.stage("x"):
            pass
        before = timer.as_dict()
        timer.merge(StageTimer())
        assert timer.as_dict() == before

    def test_mean_of_untimed_stage_is_zero_not_an_error(self):
        timer = StageTimer()
        with timer.stage("timed"):
            pass
        assert timer.mean("never-ran") == 0.0

    def test_nested_stage_contexts_both_accumulate(self):
        timer = StageTimer()
        with timer.stage("outer"):
            with timer.stage("inner"):
                time.sleep(0.001)
        assert timer.count("outer") == 1
        assert timer.count("inner") == 1
        # the outer stage's clock covers the inner one
        assert timer.total("outer") >= timer.total("inner")
        inner = next(
            r for r in timer.tracer.records if r.name == "inner"
        )
        assert inner.parent == "outer" and inner.depth == 1

    def test_nested_same_name_counts_twice(self):
        timer = StageTimer()
        with timer.stage("s"):
            with timer.stage("s"):
                pass
        assert timer.count("s") == 2

    def test_is_backed_by_a_shared_tracer(self):
        tracer = Tracer()
        timer = StageTimer(tracer=tracer)
        with timer.stage("s"):
            pass
        assert tracer.count("s") == 1
