"""Edge displacement error (Definition 1).

EDE compares the bounding boxes of the golden and predicted contours: for
each of the four box edges, the displacement is the distance between the
golden edge and the predicted one.  We report the mean over the four edges,
converted to nm.  (EPE would compare against the *design target*; EDE
deliberately compares model vs. golden contours.)
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import EvaluationError
from ..geometry import bounding_box_of_mask


def ede_per_edge_nm(golden: np.ndarray, predicted: np.ndarray,
                    nm_per_px: float,
                    empty_penalty_nm: Optional[float] = None
                    ) -> Tuple[float, float, float, float]:
    """Per-edge displacements (top, bottom, left, right) in nm.

    If the predicted pattern is empty, ``empty_penalty_nm`` is returned for
    every edge when given; otherwise an :class:`EvaluationError` is raised.
    """
    if golden.shape != predicted.shape:
        raise EvaluationError(
            f"image shape mismatch: {golden.shape} vs {predicted.shape}"
        )
    if nm_per_px <= 0:
        raise EvaluationError(f"nm_per_px must be positive, got {nm_per_px}")
    golden_box = bounding_box_of_mask(golden)
    if golden_box is None:
        raise EvaluationError("golden pattern is empty")
    predicted_box = bounding_box_of_mask(predicted)
    if predicted_box is None:
        if empty_penalty_nm is None:
            raise EvaluationError(
                "predicted pattern is empty and no penalty was specified"
            )
        return (empty_penalty_nm,) * 4
    g_rlo, g_clo, g_rhi, g_chi = golden_box
    p_rlo, p_clo, p_rhi, p_chi = predicted_box
    return (
        abs(g_rlo - p_rlo) * nm_per_px,  # top edge
        abs(g_rhi - p_rhi) * nm_per_px,  # bottom edge
        abs(g_clo - p_clo) * nm_per_px,  # left edge
        abs(g_chi - p_chi) * nm_per_px,  # right edge
    )


def ede_nm(golden: np.ndarray, predicted: np.ndarray, nm_per_px: float,
           empty_penalty_nm: Optional[float] = None) -> float:
    """Mean edge displacement error over the four bounding-box edges, nm."""
    edges = ede_per_edge_nm(
        golden, predicted, nm_per_px, empty_penalty_nm=empty_penalty_nm
    )
    return float(np.mean(edges))
