"""Span tracing: nested wall-clock measurement of pipeline phases.

A :class:`Tracer` hands out context-manager :class:`Span`\\ s.  Spans nest
(the tracer keeps an active stack, so each finished record knows its depth
and parent), carry arbitrary metadata, and accumulate into per-name totals —
which is exactly the accounting the Table 4 runtime comparison needs, so the
historical :class:`StageTimer` API is now a thin veneer over a ``Tracer`` and
is re-exported unchanged from :mod:`repro.sim.runtime`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry


@dataclass
class SpanRecord:
    """One finished span, in completion order."""

    name: str
    seconds: float
    depth: int
    parent: Optional[str]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "seconds": self.seconds,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.metadata:
            record["metadata"] = dict(self.metadata)
        return record


class Span:
    """Live handle yielded by :meth:`Tracer.span`; annotate via :meth:`note`."""

    __slots__ = ("name", "metadata", "_start")

    def __init__(self, name: str, metadata: Dict[str, Any]) -> None:
        self.name = name
        self.metadata = metadata
        self._start = 0.0

    def note(self, **metadata: Any) -> None:
        """Attach metadata to the span while it is running."""
        self.metadata.update(metadata)


class Tracer:
    """Collects finished :class:`SpanRecord`\\ s and per-name aggregates."""

    def __init__(self) -> None:
        self._records: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def span(self, name: str, **metadata: Any) -> Iterator[Span]:
        handle = Span(name, dict(metadata))
        parent = self._stack[-1].name if self._stack else None
        depth = len(self._stack)
        self._stack.append(handle)
        handle._start = time.perf_counter()
        try:
            yield handle
        finally:
            elapsed = time.perf_counter() - handle._start
            self._stack.pop()
            self._records.append(
                SpanRecord(
                    name=name, seconds=elapsed, depth=depth,
                    parent=parent, metadata=handle.metadata,
                )
            )
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add_record(self, name: str, seconds: float,
                   **metadata: Any) -> SpanRecord:
        """Record an externally timed span without sampling the clock.

        For latencies assembled from parts (e.g. a served clip's share of a
        batched forward pass plus its own post-processing) that still belong
        in the same per-name aggregates as context-manager spans.
        """
        record = SpanRecord(
            name=name, seconds=float(seconds), depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            metadata=dict(metadata),
        )
        self._records.append(record)
        self._totals[name] = self._totals.get(name, 0.0) + record.seconds
        self._counts[name] = self._counts.get(name, 0) + 1
        return record

    # -- aggregates ---------------------------------------------------------

    @property
    def records(self) -> Tuple[SpanRecord, ...]:
        return tuple(self._records)

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        count = self._counts.get(name, 0)
        return self._totals[name] / count if count else 0.0

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's finished spans into this one."""
        self._records.extend(other._records)
        for name, total in other._totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + total
            self._counts[name] = self._counts.get(name, 0) + other._counts[name]

    def to_dict(self) -> dict:
        return {
            "spans": [record.to_dict() for record in self._records],
            "totals": self.totals(),
            "counts": dict(self._counts),
        }

    def record_into(self, registry: MetricsRegistry,
                    histogram: str = "stage_seconds",
                    counter: str = "stages_total",
                    label: str = "stage") -> None:
        """Export finished spans as labeled latency histograms + counters."""
        for record in self._records:
            labels = {label: record.name}
            registry.histogram(histogram, labels=labels).observe(record.seconds)
            registry.counter(counter, labels=labels).inc()


class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage.

    Historically a standalone dict-of-totals; now backed by a :class:`Tracer`
    so Table 4 accounting and span tracing share one measurement substrate.
    The public API is unchanged from the original.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        with self.tracer.span(name):
            yield

    def total(self, name: str) -> float:
        return self.tracer.total(name)

    def count(self, name: str) -> int:
        return self.tracer.count(name)

    def mean(self, name: str) -> float:
        return self.tracer.mean(name)

    def as_dict(self) -> Dict[str, float]:
        return self.tracer.totals()

    def merge(self, other: "StageTimer") -> None:
        self.tracer.merge(other.tracer)
