"""The serving ladder: admission → model → guard → retry → simulator fallback.

:class:`InferenceService` turns a trained LithoGAN into a batch-inference
endpoint hardened against the failure modes a research checkpoint meets in
production: malformed inputs, degenerate generator outputs, and overload.
Every admitted clip is *always* answered — the open question is only the
provenance of the answer:

``model``
    The generator output (possibly salvaged by re-thresholding or
    re-centering) passed the :class:`~repro.serving.guards.OutputGuard`.
``fallback_sim``
    The guard condemned the model output (or the circuit breaker had the
    model benched), so the compact-mode physics simulator re-derived the
    resist window from the mask encoding itself.

The per-clip recovery ladder, in order and stopping at the first success:

1. serve the model output if the guard passes it;
2. re-binarize the raw generator output at each configured retry threshold,
   keeping only the largest connected component;
3. despeckle at the default threshold (largest component only) and re-place;
4. simulate the mask through the physics pipeline (if fallback is enabled);
5. serve the original model output flagged ``degenerate`` — best effort,
   but never silence.

Overload protection wraps the ladder: a bounded admission queue sheds excess
clips with typed ``overload`` rejections, a per-batch :class:`Deadline`
collapses the ladder to best-effort once the budget is gone, and a
:class:`CircuitBreaker` benches the model after consecutive guard failures,
serving simulator-only until a half-open probe proves it healthy again.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import ExperimentConfig
from ..core.recenter import binarize, recenter_to_predicted
from ..errors import ReproError
from ..geometry import keep_largest_component
from ..runtime.faults import FaultPlan
from ..runtime.parallel import WorkerPool
from ..telemetry.hooks import NULL_HOOK, TelemetryHook
from ..telemetry.trace import Tracer
from .admission import AdmittedBatch, Rejection, admit_masks
from .guards import GuardReport, OutputGuard, VERDICT_DEGENERATE
from .overload import CircuitBreaker, Deadline

#: sentinel: "use config.serving.deadline_s" (None must mean "no deadline")
_CONFIG_DEADLINE = object()

#: provenance tags on served clips
PROVENANCE_MODEL = "model"
PROVENANCE_FALLBACK = "fallback_sim"

#: fallback causes (the ``cause`` field of fallback clips and telemetry)
CAUSE_DEGENERATE = "degenerate"
CAUSE_BREAKER = "breaker"


@dataclass(frozen=True)
class ServedClip:
    """One answered clip, with full provenance of how it was produced."""

    clip: int
    resist: np.ndarray
    provenance: str
    verdict: str
    guard: GuardReport
    attempts: Tuple[str, ...]
    cause: str
    seconds: float

    @property
    def fallback(self) -> bool:
        return self.provenance == PROVENANCE_FALLBACK

    def to_dict(self) -> dict:
        """JSON-ready summary (the resist array itself is omitted)."""
        return {
            "clip": self.clip,
            "provenance": self.provenance,
            "verdict": self.verdict,
            "guard": self.guard.to_dict(),
            "attempts": list(self.attempts),
            "cause": self.cause,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class BatchReport:
    """Everything one :meth:`InferenceService.serve_batch` call produced."""

    served: Tuple[ServedClip, ...]
    rejections: Tuple[Rejection, ...]
    sanitized: int
    deadline_exceeded: bool
    breaker_transitions: Tuple[Tuple[str, str, str], ...]
    breaker_state: str
    seconds: float = field(default=0.0)

    @property
    def admitted(self) -> int:
        return len(self.served)

    @property
    def rejected(self) -> int:
        return len(self.rejections)

    @property
    def fallbacks(self) -> int:
        return sum(1 for clip in self.served if clip.fallback)

    def fallbacks_by_cause(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for clip in self.served:
            if clip.fallback:
                counts[clip.cause] = counts.get(clip.cause, 0) + 1
        return counts

    def verdicts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for clip in self.served:
            counts[clip.verdict] = counts.get(clip.verdict, 0) + 1
        return counts

    def resists(self) -> Dict[int, np.ndarray]:
        """Answered windows keyed by original batch position."""
        return {clip.clip: clip.resist for clip in self.served}

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "sanitized": self.sanitized,
            "fallbacks": self.fallbacks,
            "fallbacks_by_cause": self.fallbacks_by_cause(),
            "verdicts": self.verdicts(),
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_transitions": [
                list(edge) for edge in self.breaker_transitions
            ],
            "breaker_state": self.breaker_state,
            "seconds": self.seconds,
            "served": [clip.to_dict() for clip in self.served],
            "rejections": [r.to_dict() for r in self.rejections],
        }


class InferenceService:
    """Hardened batch inference over a trained LithoGAN (or stand-in).

    ``model`` is duck-typed: anything exposing
    ``predict_raw(masks) -> (mono, centers)`` serves — the real
    :class:`~repro.core.lithogan.LithoGan`, or a fake in drills.  The
    physics fallback simulator is built lazily on first use (compact mode,
    cached kernels), so model-only batches never pay for it.
    """

    def __init__(self, model, config: ExperimentConfig,
                 hook: Optional[TelemetryHook] = None,
                 tracer: Optional[Tracer] = None,
                 simulator=None, clock=None):
        self.model = model
        self.config = config
        self.serving = config.serving
        self.hook = hook if hook is not None else NULL_HOOK
        self.tracer = tracer if tracer is not None else Tracer()
        self.guard = OutputGuard(config)
        self.clock = clock
        self.breaker = CircuitBreaker(
            threshold=self.serving.breaker_threshold,
            probe_after=self.serving.breaker_probe_after,
            on_transition=self.hook.on_breaker,
            clock=clock,
        )
        self._simulator = simulator
        self._thread_sims = threading.local()

    # -- fallback --------------------------------------------------------------

    @property
    def simulator(self):
        if self._simulator is None:
            from ..sim.pipeline import LithographySimulator

            self._simulator = LithographySimulator(self.config)
        return self._simulator

    def _thread_simulator(self):
        """A per-thread fallback simulator for parallel clip evaluation.

        The shared simulator's internal stage tracer keeps a span *stack*,
        which is not safe to interleave across threads; each evaluation
        thread therefore gets its own compact simulator (the expensive
        kernel decomposition is shared through the imager caches).  An
        explicitly injected simulator (tests, drills) is trusted and shared.
        """
        if self._simulator is not None:
            return self._simulator
        sim = getattr(self._thread_sims, "sim", None)
        if sim is None:
            from ..sim.pipeline import LithographySimulator

            sim = LithographySimulator(self.config)
            self._thread_sims.sim = sim
        return sim

    def _simulate_fallback(self, mask: np.ndarray,
                           simulator=None) -> Optional[np.ndarray]:
        """Golden window from the physics pipeline, or None if it fails too."""
        if simulator is None:
            simulator = self.simulator
        try:
            return simulator.simulate_mask_image(mask)
        except ReproError:
            return None

    # -- the per-clip ladder ---------------------------------------------------

    def _place(self, shape: np.ndarray, center: np.ndarray) -> np.ndarray:
        return recenter_to_predicted(shape, center)

    def _model_candidate(self, mono: np.ndarray, center: np.ndarray,
                         threshold: float, despeckle: bool):
        """One ladder rung: binarize → (despeckle) → place → guard."""
        shape = binarize(mono, threshold)
        if despeckle:
            shape = keep_largest_component(shape)
        placed = self._place(shape, center)
        return placed, self.guard.check(placed, expected_center=center)

    def _evaluate_model_clip(self, clip: int, mask: np.ndarray,
                             mono: np.ndarray, center: np.ndarray,
                             deadline: Deadline,
                             simulator=None
                             ) -> Tuple[ServedClip, Optional[bool], str]:
        """The recovery ladder as a *pure* evaluation.

        Touches no shared mutable state (breaker, hook, tracer), so it is
        safe to run concurrently across clips.  Returns the served clip
        plus the side effects for the caller to commit in clip order: the
        breaker outcome (``True`` success / ``False`` guard failure) and
        the fallback cause to report (empty when no fallback was served).
        """
        attempts: List[str] = ["model"]
        placed, report = self._model_candidate(
            mono, center, threshold=0.5, despeckle=False
        )
        best = (placed, report)

        if report.degenerate and not deadline.exceeded():
            # Rung 2: the generator often emits a plausible shape wrapped in
            # low-confidence haze or dropouts; a different threshold (largest
            # component only) frequently recovers it without re-running it.
            for threshold in self.serving.retry_thresholds:
                attempts.append(f"rethreshold:{threshold:g}")
                placed, report = self._model_candidate(
                    mono, center, threshold=threshold, despeckle=True
                )
                if not report.degenerate:
                    break
            if report.degenerate:
                # Rung 3: despeckle at the default threshold — fragments and
                # satellites go, the dominant blob is re-placed on its own.
                attempts.append("recenter")
                placed, report = self._model_candidate(
                    mono, center, threshold=0.5, despeckle=True
                )
            best = (placed, report)

        if not report.degenerate:
            return ServedClip(
                clip=clip, resist=best[0], provenance=PROVENANCE_MODEL,
                verdict=report.verdict, guard=report,
                attempts=tuple(attempts), cause="", seconds=0.0,
            ), True, ""

        # Ladder exhausted: this is the guard failure the breaker counts.
        if deadline.exceeded():
            attempts.append("deadline")
            return ServedClip(
                clip=clip, resist=best[0], provenance=PROVENANCE_MODEL,
                verdict=VERDICT_DEGENERATE, guard=best[1],
                attempts=tuple(attempts), cause="", seconds=0.0,
            ), False, ""
        if self.serving.fallback_enabled:
            attempts.append("fallback_sim")
            window = self._simulate_fallback(mask, simulator=simulator)
            if window is not None:
                report = self.guard.check(window)
                return ServedClip(
                    clip=clip, resist=window,
                    provenance=PROVENANCE_FALLBACK,
                    verdict=report.verdict, guard=report,
                    attempts=tuple(attempts), cause=CAUSE_DEGENERATE,
                    seconds=0.0,
                ), False, CAUSE_DEGENERATE
            attempts.append("fallback_failed")
        return ServedClip(
            clip=clip, resist=best[0], provenance=PROVENANCE_MODEL,
            verdict=VERDICT_DEGENERATE, guard=best[1],
            attempts=tuple(attempts), cause="", seconds=0.0,
        ), False, ""

    def _serve_model_clip(self, clip: int, mask: np.ndarray,
                          mono: np.ndarray, center: np.ndarray,
                          deadline: Deadline,
                          use_breaker: bool) -> ServedClip:
        """Evaluate the ladder and commit its side effects immediately."""
        result, guard_ok, cause = self._evaluate_model_clip(
            clip, mask, mono, center, deadline
        )
        self._commit_clip_effects(clip, guard_ok, cause,
                                  use_breaker=use_breaker)
        return result

    def _evaluate_breaker_clip(self, clip: int, mask: np.ndarray,
                               simulator=None
                               ) -> Tuple[ServedClip, Optional[bool], str]:
        """Breaker open: simulator-only, the model is not invoked (pure)."""
        attempts = ("breaker", "fallback_sim")
        window = self._simulate_fallback(mask, simulator=simulator)
        if window is not None:
            report = self.guard.check(window)
            return ServedClip(
                clip=clip, resist=window, provenance=PROVENANCE_FALLBACK,
                verdict=report.verdict, guard=report, attempts=attempts,
                cause=CAUSE_BREAKER, seconds=0.0,
            ), None, CAUSE_BREAKER
        empty = np.zeros(
            (self.config.model.image_size,) * 2, dtype=np.float64
        )
        # The hook cause (third value) stays empty: no fallback *answer* was
        # produced, so no fallback event is reported for this clip.
        return ServedClip(
            clip=clip, resist=empty, provenance=PROVENANCE_FALLBACK,
            verdict=VERDICT_DEGENERATE, guard=self.guard.check(empty),
            attempts=attempts + ("fallback_failed",),
            cause=CAUSE_BREAKER, seconds=0.0,
        ), None, ""

    def _serve_breaker_clip(self, clip: int,
                            mask: np.ndarray) -> ServedClip:
        """Breaker open: evaluate and commit the fallback report."""
        result, guard_ok, cause = self._evaluate_breaker_clip(clip, mask)
        self._commit_clip_effects(clip, guard_ok, cause, use_breaker=False)
        return result

    def _commit_clip_effects(self, clip: int, guard_ok: Optional[bool],
                             cause: str, use_breaker: bool) -> None:
        """Apply one evaluated clip's breaker/hook effects, in clip order."""
        if guard_ok is not None and use_breaker:
            if guard_ok:
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
        if cause:
            self.hook.on_fallback(clip, cause)

    # -- the batch loop --------------------------------------------------------

    def _evaluate_payload(self, payload, deadline: Deadline):
        """Thread-pool entry: evaluate one clip's ladder, timed, statelessly."""
        kind, clip, mask, out, center = payload
        start = time.perf_counter()
        if kind == "model":
            result, guard_ok, cause = self._evaluate_model_clip(
                clip, mask, out, center, deadline,
                simulator=self._thread_simulator(),
            )
        else:
            result, guard_ok, cause = self._evaluate_breaker_clip(
                clip, mask, simulator=self._thread_simulator(),
            )
        return result, guard_ok, cause, time.perf_counter() - start

    def serve_batch(self,
                    masks: Union[np.ndarray, Sequence[np.ndarray]],
                    deadline_s=_CONFIG_DEADLINE,
                    faults: Optional[FaultPlan] = None) -> BatchReport:
        """Answer every admissible clip of one batch; see module docstring.

        ``deadline_s`` overrides ``config.serving.deadline_s`` when given
        explicitly (``None`` disables the deadline outright).  ``faults``
        poisons scheduled generator outputs *after* the forward pass and
        *before* the guard — the deterministic degradation drills run on it.

        When ``config.parallel.workers > 1``, the per-clip guard/retry/
        fallback ladders of each micro-batch are evaluated concurrently on a
        thread pool; the generator forward stays micro-batched, and all
        stateful effects (circuit-breaker records, telemetry hooks, tracer
        records) are committed sequentially in clip order afterwards, so
        breaker state machines and event streams are identical to a serial
        run.

        Raises :class:`~repro.errors.AdmissionError` only if the batch
        container itself is malformed; per-clip problems come back as typed
        rejections on the report, never as exceptions.
        """
        batch_start = time.perf_counter()
        if deadline_s is _CONFIG_DEADLINE:
            deadline_s = self.serving.deadline_s
        deadline = Deadline(deadline_s, clock=self.clock)

        admitted: AdmittedBatch = admit_masks(
            masks, self.config, capacity=self.serving.queue_capacity
        )
        self.hook.on_admission(
            admitted.admitted, admitted.rejected, sanitized=admitted.sanitized
        )

        eval_pool: Optional[WorkerPool] = None
        if self.config.parallel.workers > 1:
            eval_pool = WorkerPool(
                workers=self.config.parallel.workers, backend="thread",
                timeout_s=self.config.parallel.timeout_s,
                tracer=self.tracer, hook=self.hook,
            )

        served: List[ServedClip] = []
        micro = max(1, self.serving.micro_batch)
        use_breaker = self.serving.fallback_enabled
        cursor = 0
        try:
            while cursor < admitted.admitted:
                batch_masks = admitted.masks[cursor:cursor + micro]
                batch_indices = admitted.indices[cursor:cursor + micro]
                cursor += len(batch_indices)

                # Decide, clip by clip and in order, who may see the model.
                # The open-state probe schedule advances on every denied
                # clip, so a breaker can half-open mid-micro-batch.
                overdue = deadline.exceeded()
                allowed = [
                    True if (overdue or not use_breaker)
                    else self.breaker.allow_model()
                    for _ in batch_indices
                ]
                model_rows = [i for i, ok in enumerate(allowed) if ok]

                forward_share = 0.0
                mono = centers = None
                if model_rows:
                    forward_start = time.perf_counter()
                    with self.tracer.span("serve_forward",
                                          clips=len(model_rows)):
                        mono, centers = self.model.predict_raw(
                            batch_masks[model_rows]
                        )
                    forward_share = (
                        (time.perf_counter() - forward_start)
                        / len(model_rows)
                    )

                row_of = {row: k for k, row in enumerate(model_rows)}
                if eval_pool is not None and len(batch_indices) > 1:
                    served.extend(self._serve_micro_batch_parallel(
                        eval_pool, batch_masks, batch_indices, row_of,
                        mono, centers, deadline, faults, forward_share,
                        use_breaker=use_breaker and not overdue,
                    ))
                    continue
                for i, clip in enumerate(batch_indices):
                    clip_start = time.perf_counter()
                    if i in row_of:
                        out = mono[row_of[i]]
                        if faults is not None:
                            out = faults.degrade_output(clip, out)
                        result = self._serve_model_clip(
                            clip, batch_masks[i], out, centers[row_of[i]],
                            deadline,
                            use_breaker=use_breaker and not overdue,
                        )
                        seconds = (
                            forward_share + time.perf_counter() - clip_start
                        )
                    else:
                        result = self._serve_breaker_clip(
                            clip, batch_masks[i]
                        )
                        seconds = time.perf_counter() - clip_start
                    served.append(self._finish_clip(result, seconds))
        finally:
            if eval_pool is not None:
                eval_pool.close()

        return BatchReport(
            served=tuple(served),
            rejections=admitted.rejections,
            sanitized=admitted.sanitized,
            deadline_exceeded=deadline.exceeded(),
            breaker_transitions=tuple(self.breaker.transitions),
            breaker_state=self.breaker.state,
            seconds=time.perf_counter() - batch_start,
        )

    def _serve_micro_batch_parallel(self, pool: WorkerPool, batch_masks,
                                    batch_indices, row_of, mono, centers,
                                    deadline: Deadline,
                                    faults: Optional[FaultPlan],
                                    forward_share: float,
                                    use_breaker: bool) -> List[ServedClip]:
        """Evaluate one micro-batch's ladders concurrently, commit in order.

        Fault consumption happens here, in the main thread and in clip
        order, *before* dispatch — identical to the serial path — and the
        breaker/hook/tracer effects are replayed sequentially afterwards.
        """
        payloads = []
        for i, clip in enumerate(batch_indices):
            if i in row_of:
                out = mono[row_of[i]]
                if faults is not None:
                    out = faults.degrade_output(clip, out)
                payloads.append(
                    ("model", clip, batch_masks[i], out, centers[row_of[i]])
                )
            else:
                payloads.append(
                    ("breaker", clip, batch_masks[i], None, None)
                )
        evaluated = pool.map(
            lambda payload: self._evaluate_payload(payload, deadline),
            payloads, task="serve_eval",
        )
        results: List[ServedClip] = []
        for i, (result, guard_ok, cause, eval_seconds) in enumerate(
                evaluated):
            clip = batch_indices[i]
            self._commit_clip_effects(
                clip, guard_ok, cause,
                use_breaker=use_breaker and i in row_of,
            )
            seconds = eval_seconds + (
                forward_share if i in row_of else 0.0
            )
            results.append(self._finish_clip(result, seconds))
        return results

    def _finish_clip(self, result: ServedClip,
                     seconds: float) -> ServedClip:
        """Stamp the latency and emit the per-clip telemetry."""
        result = ServedClip(
            clip=result.clip, resist=result.resist,
            provenance=result.provenance, verdict=result.verdict,
            guard=result.guard, attempts=result.attempts,
            cause=result.cause, seconds=seconds,
        )
        self.tracer.add_record(
            "serve_clip", seconds, clip=result.clip,
            provenance=result.provenance, verdict=result.verdict,
        )
        self.hook.on_clip_served(
            result.clip, result.provenance, result.verdict, seconds
        )
        return result


def serve_latency_quantiles(tracer: Tracer,
                            quantiles: Sequence[float] = (0.5, 0.9, 0.99),
                            name: str = "serve_clip") -> Dict[str, float]:
    """Per-clip serve latency quantiles from a tracer's ``serve_clip`` spans.

    Returns ``{"p50": ..., "p90": ..., "p99": ...}`` (keys derive from the
    requested quantiles); empty when no clips were served.
    """
    seconds = [r.seconds for r in tracer.records if r.name == name]
    if not seconds:
        return {}
    values = np.percentile(
        np.asarray(seconds, dtype=np.float64),
        [100.0 * q for q in quantiles],
    )
    return {
        f"p{round(100 * q):d}": float(v)
        for q, v in zip(quantiles, values)
    }
