"""Dataset persistence as compressed ``.npz`` archives with integrity
manifests.

Writes are atomic (temp file + fsync + ``os.replace``) so a killed process
never leaves a truncated archive, and every save emits a per-record
``<name>.manifest.json`` integrity sidecar (see :mod:`repro.data.integrity`).
Reads fail closed: any unreadable, truncated, or key-incomplete archive
raises :class:`~repro.errors.DataError` naming the offending path instead of
leaking a raw ``KeyError``/``ValueError``.  Load-time *policies* extend the
fail-closed posture to individual records: ``strict`` refuses a dataset with
any invalid record, ``salvage`` quarantines the bad records and returns the
verified remainder.
"""

from __future__ import annotations

import tokenize
import zipfile
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..config import (
    DATA_POLICY_NONE,
    DATA_POLICY_SALVAGE,
    DATA_POLICY_STRICT,
    ExperimentConfig,
)
from ..errors import ConfigError, DataError
from ..runtime.atomic import atomic_write_bytes, serialize_npz
from .dataset import PairedDataset

_REQUIRED_KEYS = ("masks", "resists", "centers", "array_types")


def save_dataset(dataset: PairedDataset, path: Union[str, Path],
                 manifest: bool = True) -> Path:
    """Write a dataset to ``path`` (a ``.npz`` suffix is added if missing).

    Both writes are atomic, and the archive's bytes are *deterministic*
    (fixed zip-member timestamps via
    :func:`~repro.runtime.atomic.serialize_npz`), so equal datasets always
    produce byte-identical files — the property the ``--workers N``
    equivalence guarantee is tested against.

    Unless ``manifest=False``, a ``<name>.manifest.json`` integrity sidecar
    with per-record content hashes (and synthesis provenance, when the
    dataset carries it) is written **before** the archive.  That ordering
    makes the pair crash-consistent: a kill between the two writes leaves a
    manifest without its archive (loading reports a missing dataset file)
    or, when overwriting, a fresh manifest beside the previous archive —
    whose stale records then fail their hash checks under ``strict``/
    ``salvage`` policies.  No crash point can leave an archive that is
    silently mistaken for a manifest-less legacy dataset.
    """
    from .integrity import build_manifest, manifest_path_for

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if manifest:
        build_manifest(dataset).save(manifest_path_for(path))
    atomic_write_bytes(path, serialize_npz({
        "masks": dataset.masks,
        "resists": dataset.resists,
        "centers": dataset.centers,
        "array_types": dataset.array_types.astype(str),
        "tech_name": np.array(dataset.tech_name),
    }))
    return path


def _read_archive(path: Path) -> PairedDataset:
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            missing = [key for key in _REQUIRED_KEYS if key not in data.files]
            if missing:
                raise DataError(
                    f"{path} is not a dataset archive (missing {missing})"
                )
            tech_name = str(data["tech_name"]) if "tech_name" in data.files else ""
            return PairedDataset(
                data["masks"],
                data["resists"],
                data["centers"],
                data["array_types"],
                tech_name=tech_name,
            )
    except DataError:
        raise
    except (OSError, ValueError, EOFError, KeyError, IndexError,
            zipfile.BadZipFile, zlib.error, SyntaxError,
            tokenize.TokenError) as exc:
        # SyntaxError/TokenError leak from numpy's .npy header parser when
        # bit rot lands inside the header dict literal.
        raise DataError(
            f"unreadable dataset archive {path}: {exc}"
        ) from exc


def load_dataset(path: Union[str, Path],
                 policy: str = DATA_POLICY_NONE,
                 config: Optional[ExperimentConfig] = None):
    """Load a dataset previously written by :func:`save_dataset`.

    Raises :class:`DataError` (naming the path, and the missing keys where
    applicable) for absent files, non-dataset archives, and corrupt or
    truncated files.

    ``policy`` selects the per-record integrity posture (see
    :mod:`repro.data.integrity`); ``strict`` and ``salvage`` require a
    ``config`` to derive the golden-geometry bounds from:

    ``"none"`` (default)
        Archive-level checks only; returns the :class:`PairedDataset`.
    ``"strict"``
        Validate every record against the manifest sidecar and the golden
        invariants; raise :class:`~repro.errors.DataIntegrityError` naming
        the bad indices and reasons if anything is quarantined.  Returns
        the :class:`PairedDataset`.
    ``"salvage"``
        Validate, then return a ``(dataset, report)`` tuple: the verified
        subset plus the typed
        :class:`~repro.data.integrity.QuarantineReport`.

    A legacy archive without a manifest still loads under either policy:
    validation degrades to structural + geometry checks (no hash check) and
    the report's ``manifest_missing`` flag is set so callers can warn.
    """
    from .integrity import DatasetValidator, load_manifest, strict_check

    path = Path(path)
    dataset = _read_archive(path)
    if policy == DATA_POLICY_NONE:
        return dataset
    if policy not in (DATA_POLICY_STRICT, DATA_POLICY_SALVAGE):
        raise ConfigError(
            f"load_dataset policy must be 'none', 'strict', or 'salvage', "
            f"got {policy!r}"
        )
    if config is None:
        raise ConfigError(
            f"load_dataset(policy={policy!r}) requires an ExperimentConfig "
            "to derive validation bounds from"
        )
    manifest = load_manifest(path)
    report = DatasetValidator(config).validate(dataset, manifest)
    if policy == DATA_POLICY_STRICT:
        strict_check(report, source=str(path))
        return dataset
    if report.ok:
        return dataset, report
    return dataset.subset(np.array(report.clean_indices, dtype=int)), report
