"""Checkpoint archives, manifest validation, and retention."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn import Adam, Dense, Dropout, ReLU, Sequential
from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    META_KEY,
    CheckpointManager,
    capture_rng_states,
    collect_rngs,
    extract_extras,
    load_checkpoint_source,
    pack_state,
    read_checkpoint,
    restore_rng_states,
    unpack_state,
)
from repro.runtime.faults import FaultPlan


def make_net(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(4, 8, rng), ReLU(), Dropout(0.5, rng), Dense(8, 2, rng)]
    )


def train_a_little(net: Sequential, optimizer: Adam, steps: int = 3) -> None:
    rng = np.random.default_rng(7)
    for _ in range(steps):
        x = rng.normal(size=(5, 4)).astype(np.float32)
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out))
        optimizer.step()
        optimizer.zero_grad()


class TestRngCapture:
    def test_collect_includes_layer_generators(self):
        fit_rng = np.random.default_rng(1)
        net = make_net()
        rngs = collect_rngs(fit_rng, net)
        assert rngs[0] is fit_rng
        assert len(rngs) == 2  # fit rng + the Dropout layer's generator

    def test_collect_rejects_unknown_source(self):
        with pytest.raises(CheckpointError, match="cannot collect"):
            collect_rngs(42)

    def test_capture_restore_continues_stream(self):
        rng = np.random.default_rng(3)
        rng.random(10)
        states = capture_rng_states([rng])
        expected = rng.random(5)
        rng.random(100)  # wander off
        restore_rng_states([rng], states)
        assert np.array_equal(rng.random(5), expected)

    def test_restore_length_mismatch_fails_closed(self):
        rng = np.random.default_rng(0)
        states = capture_rng_states([rng])
        with pytest.raises(CheckpointError, match="RNG states"):
            restore_rng_states([rng, np.random.default_rng(1)], states)


class TestPackUnpack:
    def test_roundtrip_restores_everything(self):
        net = make_net(0)
        opt = Adam(net.parameters(), learning_rate=1e-3)
        fit_rng = np.random.default_rng(1)
        rngs = collect_rngs(fit_rng, net)
        train_a_little(net, opt)
        payload, meta = pack_state(
            epoch=3, phase="demo", nets={"net": net},
            optimizers={"opt": opt}, rngs=rngs,
            history={"loss": [1.0, 0.5]},
            arrays={"snap": np.ones((2, 2))},
        )
        reference = {k: v.copy() for k, v in net.state_dict().items()}
        next_draw = fit_rng.random(4)

        # wreck the live state, then restore
        train_a_little(net, opt, steps=2)
        fit_rng.random(50)
        other = make_net(9)
        epoch = unpack_state(
            payload, meta, nets={"net": net}, optimizers={"opt": opt},
            rngs=rngs, expect_phase="demo",
        )
        assert epoch == 3
        for key, value in net.state_dict().items():
            assert np.array_equal(value, reference[key]), key
        assert np.array_equal(fit_rng.random(4), next_draw)
        assert meta["history"]["loss"] == [1.0, 0.5]
        assert np.array_equal(extract_extras(payload)["snap"], np.ones((2, 2)))
        del other

    def test_snapshot_is_detached_from_live_state(self):
        net = make_net(0)
        opt = Adam(net.parameters())
        payload, _ = pack_state(
            epoch=1, phase="demo", nets={"net": net}, optimizers={"opt": opt}
        )
        frozen = {k: v.copy() for k, v in payload.items()}
        train_a_little(net, opt)
        for key, value in payload.items():
            assert np.array_equal(value, frozen[key]), key

    def test_phase_mismatch_rejected(self):
        net = make_net()
        payload, meta = pack_state(epoch=1, phase="cgan", nets={"net": net})
        with pytest.raises(CheckpointError, match="phase"):
            unpack_state(payload, meta, nets={"net": net},
                         expect_phase="center-cnn")

    def test_missing_component_rejected(self):
        net = make_net()
        payload, meta = pack_state(epoch=1, phase="p", nets={"net": net})
        with pytest.raises(CheckpointError, match="generator"):
            unpack_state(payload, meta, nets={"generator": net},
                         expect_phase="p")

    def test_shape_mismatch_names_network(self):
        net = make_net()
        payload, meta = pack_state(epoch=1, phase="p", nets={"net": net})
        wrong = Sequential([Dense(3, 3, np.random.default_rng(0))])
        with pytest.raises(CheckpointError, match="'net'"):
            unpack_state(payload, meta, nets={"net": wrong}, expect_phase="p")


class TestReadCheckpoint:
    def _write(self, manager, step=1, loss=None):
        net = make_net()
        payload, meta = pack_state(epoch=step, phase="p", nets={"net": net})
        return manager.save(step=step, arrays=payload, meta=meta, loss=loss)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_checkpoint(tmp_path / "none.npz")

    def test_truncated_archive_fails_closed(self, tmp_path):
        path = self._write(CheckpointManager(tmp_path))
        FaultPlan.truncate_file(path)
        with pytest.raises(CheckpointError, match=str(path.name)):
            read_checkpoint(path)

    def test_non_checkpoint_archive_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.ones(3))
        with pytest.raises(CheckpointError, match=META_KEY):
            read_checkpoint(path)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        meta = {"schema_version": CHECKPOINT_SCHEMA_VERSION + 1, "epoch": 1}
        np.savez(path, **{META_KEY: np.array(json.dumps(meta))})
        with pytest.raises(CheckpointError, match="schema version"):
            read_checkpoint(path)


class TestManager:
    def _save(self, manager, step, loss=None):
        net = make_net(step)
        payload, meta = pack_state(epoch=step, phase="p", nets={"net": net})
        return manager.save(step=step, arrays=payload, meta=meta, loss=loss)

    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self._save(manager, 1, loss=0.5)
        payload, meta = manager.load()
        assert meta["step"] == 1
        assert meta["loss"] == 0.5
        assert any(key.startswith("net/net/") for key in payload)

    def test_latest_and_specific_step(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for step in (1, 2, 3):
            self._save(manager, step)
        assert manager.latest_step() == 3
        _, meta = manager.load(step=2)
        assert meta["step"] == 2
        with pytest.raises(CheckpointError, match="step 9"):
            manager.load(step=9)

    def test_retention_keeps_last_n_plus_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2, keep_best=True)
        losses = {1: 0.1, 2: 0.9, 3: 0.8, 4: 0.7}
        for step, loss in losses.items():
            self._save(manager, step, loss=loss)
        steps = [entry["step"] for entry in manager.entries()]
        assert steps == [1, 3, 4]  # best (step 1) + last two
        assert manager.path_for(2).exists() is False
        assert manager.best_path() == manager.path_for(1)

    def test_retention_without_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2, keep_best=False)
        for step in (1, 2, 3):
            self._save(manager, step, loss=1.0 - step * 0.1)
        assert [e["step"] for e in manager.entries()] == [2, 3]

    def test_corrupt_checkpoint_fails_closed(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = self._save(manager, 1)
        FaultPlan.corrupt_file(path, seed=4)
        with pytest.raises(CheckpointError, match="checksum"):
            manager.load()

    def test_manifest_listing_missing_file(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = self._save(manager, 1)
        path.unlink()
        with pytest.raises(CheckpointError, match="missing file"):
            manager.load()

    def test_corrupt_manifest_fails_closed(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self._save(manager, 1)
        manager.manifest_path.write_text("{not json")
        with pytest.raises(CheckpointError, match="manifest"):
            manager.load()

    def test_empty_directory_reports_no_checkpoints(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.has_checkpoints() is False
        with pytest.raises(CheckpointError, match="no checkpoints"):
            manager.load()

    def test_scoped_submanager(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        sub = manager.scoped("cgan")
        assert sub.directory == tmp_path / "cgan"
        assert sub.keep_last == 5
        self._save(sub, 1)
        assert sub.has_checkpoints() and not manager.has_checkpoints()

    def test_invalid_options_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep_last=0)
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, prefix="")


class TestLoadCheckpointSource:
    def test_latest_requires_manager(self):
        with pytest.raises(CheckpointError, match="latest"):
            load_checkpoint_source("latest", None)

    def test_resolves_directory_path_and_manager(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        net = make_net()
        payload, meta = pack_state(epoch=2, phase="p", nets={"net": net})
        path = manager.save(step=2, arrays=payload, meta=meta)
        for source in (True, "latest"):
            _, meta_out = load_checkpoint_source(source, manager)
            assert meta_out["epoch"] == 2
        _, meta_out = load_checkpoint_source(tmp_path)  # directory
        assert meta_out["epoch"] == 2
        _, meta_out = load_checkpoint_source(path)  # direct file
        assert meta_out["epoch"] == 2
