"""Resist development and golden-pattern windowing.

Turns an aerial image into the printed resist pattern and extracts the
paper's golden-resist crop: a ``resist_window_nm`` window centered on the
target contact, resampled to the training-image resolution, keeping only the
connected blob that belongs to the center contact (Section 4: "the pattern
corresponding to the center contact in a clip is the only one adopted").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
from scipy import ndimage

from ..config import ResistConfig
from ..errors import ResistError
from ..geometry import Grid, Point, Rect
from .diffusion import diffuse_aerial_image
from .threshold import ConstantThresholdModel
from .vtr import VariableThresholdModel

ResistModel = Union[ConstantThresholdModel, VariableThresholdModel]


@dataclass(frozen=True)
class DevelopedPattern:
    """The developed resist state for one clip on the simulation grid."""

    #: diffused aerial intensity on the simulation grid
    aerial: np.ndarray
    #: per-pixel slicing-threshold map
    threshold_map: np.ndarray
    #: binary printed pattern (1 = resist cleared / contact hole)
    printed: np.ndarray
    grid: Grid

    def target_blob(self, center: Point) -> np.ndarray:
        """Binary image of the printed blob nearest a layout point."""
        labels, count = ndimage.label(self.printed)
        if count == 0:
            raise ResistError("no resist pattern printed anywhere in the clip")
        row, col = self.grid.to_pixel(center)
        centroids = ndimage.center_of_mass(
            self.printed, labels, index=range(1, count + 1)
        )
        distances = [
            (r - row) ** 2 + (c - col) ** 2 for r, c in centroids
        ]
        best = int(np.argmin(distances)) + 1
        return (labels == best).astype(np.float64)

    def target_bbox_nm(self, center: Point) -> Rect:
        """Bounding box (nm) of the target blob — the model-based OPC signal."""
        blob = self.target_blob(center)
        hot = np.argwhere(blob > 0)
        rlo, clo = hot.min(axis=0)
        rhi, chi = hot.max(axis=0) + 1
        nm = self.grid.nm_per_px
        return Rect(
            clo * nm,
            self.grid.extent_nm - rhi * nm,
            chi * nm,
            self.grid.extent_nm - rlo * nm,
        )


def make_resist_model(config: ResistConfig, model: str = "vtr") -> ResistModel:
    """Factory for the two compact resist models."""
    if model == "vtr":
        return VariableThresholdModel(config=config)
    if model == "ctr":
        return ConstantThresholdModel.from_config(config)
    raise ResistError(f"unknown resist model {model!r}; expected 'vtr' or 'ctr'")


def develop(aerial: np.ndarray, grid: Grid, config: ResistConfig,
            model: str = "vtr") -> DevelopedPattern:
    """Full resist stage: diffusion, threshold map, binary development."""
    if aerial.shape != (grid.size, grid.size):
        raise ResistError(
            f"aerial shape {aerial.shape} does not match grid size {grid.size}"
        )
    diffused = diffuse_aerial_image(
        aerial, config.diffusion_length_nm, grid.nm_per_px
    )
    resist_model = make_resist_model(config, model)
    threshold_map = resist_model.threshold_map(diffused)
    printed = (diffused >= threshold_map).astype(np.float64)
    return DevelopedPattern(
        aerial=diffused, threshold_map=threshold_map, printed=printed, grid=grid
    )


def resist_window_image(pattern: DevelopedPattern, center: Point,
                        window_nm: float, out_px: int,
                        keep_center_blob: bool = True) -> np.ndarray:
    """Golden-resist window image (Section 3.1).

    Samples the diffused aerial image and threshold map on a fine
    ``out_px x out_px`` raster covering the window (spline interpolation of
    the band-limited intensity), re-thresholds at the fine resolution, and
    keeps only the blob nearest the window center.  Returns a binary float
    image with 1 = resist opening.
    """
    if out_px < 8:
        raise ResistError(f"out_px must be >= 8, got {out_px}")
    if window_nm <= 0:
        raise ResistError(f"window must be positive, got {window_nm}")

    grid = pattern.grid
    step = window_nm / out_px
    offsets = (np.arange(out_px) + 0.5) * step - window_nm / 2.0
    xs = center.x + offsets
    ys = center.y - offsets  # rows run top-down in image space
    cols = xs / grid.nm_per_px - 0.5
    rows = (grid.extent_nm - ys) / grid.nm_per_px - 0.5
    row_grid, col_grid = np.meshgrid(rows, cols, indexing="ij")

    fine_aerial = ndimage.map_coordinates(
        pattern.aerial, [row_grid, col_grid], order=3, mode="grid-wrap"
    )
    fine_threshold = ndimage.map_coordinates(
        pattern.threshold_map, [row_grid, col_grid], order=1, mode="grid-wrap"
    )
    binary = (fine_aerial >= fine_threshold).astype(np.float64)

    if not keep_center_blob:
        return binary
    labels, count = ndimage.label(binary)
    if count == 0:
        raise ResistError(
            "target contact failed to print inside the resist window"
        )
    mid = (out_px - 1) / 2.0
    centroids = ndimage.center_of_mass(binary, labels, index=range(1, count + 1))
    distances = [(r - mid) ** 2 + (c - mid) ** 2 for r, c in centroids]
    best = int(np.argmin(distances)) + 1
    return (labels == best).astype(np.float64)
