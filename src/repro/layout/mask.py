"""The post-RET mask layout: OPC'd contacts plus SRAFs for one clip."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import TechnologyConfig
from ..errors import LayoutError
from ..geometry import Rect
from .contacts import ArrayType, ContactClip
from .opc import OpcRules, apply_rule_opc
from .sraf import SrafRules, insert_srafs


@dataclass(frozen=True)
class MaskLayout:
    """Everything on the reticle for one clip, after SRAF insertion and OPC.

    ``target`` is the OPC'd center contact (rendered green per Section 3.1),
    ``neighbors`` are the other OPC'd contacts (red), ``srafs`` are the
    assist bars (blue).  ``drawn_target`` keeps the pre-OPC rectangle for CD
    targeting and metric reference.
    """

    tech: TechnologyConfig
    array_type: ArrayType
    target: Rect
    neighbors: Tuple[Rect, ...]
    srafs: Tuple[Rect, ...]
    drawn_target: Rect
    extent_nm: float

    def __post_init__(self) -> None:
        region = Rect(0.0, 0.0, self.extent_nm, self.extent_nm)
        for name, rects in (
            ("target", [self.target]),
            ("neighbor", self.neighbors),
            ("sraf", self.srafs),
        ):
            for rect in rects:
                if not region.intersects(rect):
                    raise LayoutError(f"a {name} rectangle lies outside the clip")

    @property
    def all_features(self) -> List[Rect]:
        """Every transmitting mask opening (contacts then SRAFs)."""
        return [self.target, *self.neighbors, *self.srafs]


def build_mask_layout(clip: ContactClip,
                      sraf_rules: Optional[SrafRules] = None,
                      opc_rules: Optional[OpcRules] = None) -> MaskLayout:
    """Run the RET flow (SRAF insertion, then rule-based OPC) on a clip.

    SRAFs are placed against the *drawn* contacts (standard flow ordering),
    then contacts are OPC-biased; assist bars are not re-biased.
    """
    srafs = insert_srafs(clip, rules=sraf_rules)
    target_opc, neighbors_opc = apply_rule_opc(clip, rules=opc_rules)
    return MaskLayout(
        tech=clip.tech,
        array_type=clip.array_type,
        target=target_opc,
        neighbors=tuple(neighbors_opc),
        srafs=tuple(srafs),
        drawn_target=clip.target,
        extent_nm=clip.extent_nm,
    )
