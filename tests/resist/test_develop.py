"""Development and golden-window extraction."""

import numpy as np
import pytest

from repro.config import N10, ResistConfig, reduced
from repro.errors import ResistError
from repro.geometry import Grid, Point
from repro.layout import build_mask_layout, generate_clip, render_transmission
from repro.optics.imaging import get_imager
from repro.resist import develop, resist_window_image
from repro.resist.develop import make_resist_model


@pytest.fixture(scope="module")
def developed():
    """A developed pattern from a real simulated clip."""
    config = reduced(N10, num_clips=1)
    rng = np.random.default_rng(9)
    clip = generate_clip(config.tech, rng)
    layout = build_mask_layout(clip)
    grid = Grid(size=config.optical.grid_size, extent_nm=config.tech.cropped_clip_nm)
    imager = get_imager(config.optical, grid.extent_nm, grid.size)
    aerial = imager.aerial_image(render_transmission(layout, grid))
    return develop(aerial, grid, config.resist), config


class TestDevelop:
    def test_printed_is_binary(self, developed):
        pattern, _ = developed
        assert set(np.unique(pattern.printed)) <= {0.0, 1.0}

    def test_target_blob_is_connected_subset(self, developed):
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        blob = pattern.target_blob(Point(mid, mid))
        assert blob.sum() > 0
        assert np.all(blob <= pattern.printed)

    def test_target_bbox_contains_center(self, developed):
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        bbox = pattern.target_bbox_nm(Point(mid, mid))
        assert bbox.xlo < mid < bbox.xhi
        assert bbox.ylo < mid < bbox.yhi

    def test_bbox_size_is_contact_scale(self, developed):
        """Printed contact CD should be within 2x of the drawn 60 nm."""
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        bbox = pattern.target_bbox_nm(Point(mid, mid))
        assert 30 < bbox.width < 130
        assert 30 < bbox.height < 130

    def test_empty_printed_raises(self):
        grid = Grid(size=32, extent_nm=1000.0)
        pattern = develop(np.zeros((32, 32)), grid, ResistConfig())
        with pytest.raises(ResistError):
            pattern.target_blob(Point(500, 500))

    def test_shape_mismatch_rejected(self):
        grid = Grid(size=32, extent_nm=1000.0)
        with pytest.raises(ResistError):
            develop(np.zeros((16, 16)), grid, ResistConfig())

    def test_unknown_model_rejected(self):
        with pytest.raises(ResistError):
            make_resist_model(ResistConfig(), model="magic")


class TestResistWindow:
    def test_window_shape_and_binarity(self, developed):
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        window = resist_window_image(pattern, Point(mid, mid), 128.0, 64)
        assert window.shape == (64, 64)
        assert set(np.unique(window)) <= {0.0, 1.0}

    def test_window_keeps_single_blob(self, developed):
        from scipy import ndimage

        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        window = resist_window_image(pattern, Point(mid, mid), 128.0, 64)
        _, count = ndimage.label(window)
        assert count == 1

    def test_keep_center_blob_false_keeps_everything(self, developed):
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        all_blobs = resist_window_image(
            pattern, Point(mid, mid), 128.0, 64, keep_center_blob=False
        )
        center_only = resist_window_image(pattern, Point(mid, mid), 128.0, 64)
        assert all_blobs.sum() >= center_only.sum()

    def test_fine_resolution_refines_contour(self, developed):
        """Window area should converge as resolution rises (subpixel sampling)."""
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        coarse = resist_window_image(pattern, Point(mid, mid), 128.0, 32)
        fine = resist_window_image(pattern, Point(mid, mid), 128.0, 128)
        area_coarse = coarse.mean()
        area_fine = fine.mean()
        assert area_fine == pytest.approx(area_coarse, rel=0.2)

    def test_validation(self, developed):
        pattern, config = developed
        mid = config.tech.cropped_clip_nm / 2
        with pytest.raises(ResistError):
            resist_window_image(pattern, Point(mid, mid), 128.0, 4)
        with pytest.raises(ResistError):
            resist_window_image(pattern, Point(mid, mid), -5.0, 64)
