"""Deterministic fan-out engine: sharded dispatch with crash containment.

The hot paths of this repo — dataset synthesis, quarantine repair, per-clip
serving evaluation — are embarrassingly parallel *because* their randomness
is already sharded: every record derives from an independent
``SeedSequence(base_seed, attempt)`` child, so the answer does not depend on
which worker computes it or in what order results arrive.  This module
supplies the execution half of that bargain:

:class:`WorkerPool`
    maps a picklable function over payload shards on a ``serial``,
    ``thread``, or ``process`` backend (``auto`` picks ``serial`` for one
    worker, ``process`` otherwise).  Results come back **in submission
    order** regardless of completion order, so a parallel run reassembles
    bit-identically to a serial one.  Every worker death — crash, timeout,
    or raised exception — is converted into a :class:`~repro.errors.
    ParallelError` naming the shard; a dead worker must never become a hang.

:func:`shard_seed` / :func:`shard_rng`
    per-shard ``SeedSequence`` children for fan-outs that need fresh
    randomness rather than replaying recorded attempts.

:func:`chunk_indices`
    the canonical contiguous split of ``n`` items across ``workers`` shards
    (used by synthesis, repair, and tests so all agree on shard boundaries).

Telemetry is threaded through: each shard lands a ``parallel_shard`` tracer
record and a ``parallel_tasks_total`` counter increment; failures increment
``parallel_worker_failures_total``, emit an ``on_worker_crash`` hook call,
and (in drills) originate from :meth:`FaultPlan.inject_worker_crash`.

**Trace propagation** (the observability plane): when the pool carries a
tracer, every dispatch reserves a ``parallel_shard`` span ID up front and
ships a :class:`TraceWire` to the worker.  The worker builds a shard-local
:class:`~repro.telemetry.trace.Tracer` (origin ``w<shard>``, span IDs
namespaced under the reserved parent ID) plus a shard-local
:class:`~repro.telemetry.metrics.MetricsRegistry`, installs both as the
thread's *ambient* telemetry (:func:`~repro.telemetry.trace.
get_active_tracer` / :func:`~repro.telemetry.metrics.get_active_registry`),
and returns its finished spans and metric deltas with the shard result.  The
parent absorbs them **in submission order**, so a ``--workers 8`` run yields
one coherent, deterministic-structure trace — identical in shape across
serial, thread, and process backends.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..config import PARALLEL_BACKENDS, ParallelConfig
from ..errors import ConfigError, ParallelError, ReproError
from ..telemetry.metrics import MetricsRegistry, activate_registry
from ..telemetry.trace import Tracer, activate_tracer

#: exit status a crash-injected process worker dies with (see FaultPlan).
CRASH_EXIT_CODE = 13


class TraceWire(NamedTuple):
    """Trace context shipped to a worker shard (picklable)."""

    trace_id: str
    parent_span_id: str  # the reserved parallel_shard span ID
    origin: str          # worker lane label, e.g. "w3"


class ShardTelemetry(NamedTuple):
    """What an instrumented shard ships back beside its result."""

    result: Any
    spans: List[dict]     # SpanRecord.to_dict() forms, completion order
    metrics: dict         # MetricsRegistry.snapshot() delta


def shard_seed(base_seed: int, shard: int) -> int:
    """A stable 63-bit seed for ``shard``, derived from ``base_seed``.

    Uses ``SeedSequence`` child spawning so shard seeds are statistically
    independent and identical across platforms and backend choices.
    """
    if shard < 0:
        raise ConfigError(f"shard must be >= 0, got {shard}")
    sequence = np.random.SeedSequence((int(base_seed) % 2**63, int(shard)))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] % 2**63)


def shard_rng(base_seed: int, shard: int) -> np.random.Generator:
    """A fresh ``Generator`` for ``shard``, independent of other shards."""
    return np.random.default_rng(shard_seed(base_seed, shard))


def chunk_indices(n: int, workers: int,
                  chunk_size: Optional[int] = None) -> List[range]:
    """Split ``range(n)`` into contiguous chunks, one per shard.

    Without ``chunk_size`` the split is near-even across ``workers`` (at
    most one extra item on the leading chunks); with it, every chunk holds
    at most ``chunk_size`` items.  Empty input yields no chunks.
    """
    if n < 0:
        raise ConfigError(f"n must be >= 0, got {n}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if n == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        size = chunk_size
    else:
        size = -(-n // min(workers, n))  # ceil division, >= 1
    return [range(start, min(start + size, n))
            for start in range(0, n, size)]


def _run_wired(fn: Callable[[Any], Any], payload: Any,
               wire: TraceWire) -> ShardTelemetry:
    """Run ``fn`` under shard-local ambient telemetry; bundle the deltas.

    The shard tracer joins the parent's trace (same ``trace_id``), parents
    its root spans under the reserved ``parallel_shard`` span, and
    namespaces its span IDs under that reserved ID — globally unique without
    cross-process coordination.  Ambient installation is thread-local, so
    one pool thread running several shards sequentially never mixes them.
    """
    tracer = Tracer(
        wire.trace_id,
        origin=wire.origin,
        id_namespace=wire.parent_span_id,
        root_parent_id=wire.parent_span_id,
    )
    registry = MetricsRegistry()
    previous_tracer = activate_tracer(tracer)
    previous_registry = activate_registry(registry)
    try:
        result = fn(payload)
    finally:
        activate_tracer(previous_tracer)
        activate_registry(previous_registry)
    return ShardTelemetry(
        result=result,
        spans=[record.to_dict() for record in tracer.records],
        metrics=registry.snapshot(),
    )


def _shard_entry(fn: Callable[[Any], Any], payload: Any, shard: int,
                 crash: bool, wire: Optional[TraceWire] = None) -> Any:
    """Module-level worker entry point (must be picklable for ``process``).

    ``crash`` is the consumed fault-injection flag: in a child process it
    dies hard via ``os._exit`` — modelling a segfault/OOM-kill, invisible
    to ``except`` clauses — which surfaces to the parent as a broken pool.
    With a ``wire`` the shard runs instrumented and returns a
    :class:`ShardTelemetry` instead of the bare result.
    """
    if crash:
        # In a forked/spawned child this kills only the worker.  The serial
        # and thread backends never pass crash=True here (they raise in the
        # parent instead — _exit would take the whole interpreter down).
        os._exit(CRASH_EXIT_CODE)
    if wire is None:
        return fn(payload)
    return _run_wired(fn, payload, wire)


class WorkerPool:
    """Deterministic fan-out over serial, thread, or process workers.

    ``map`` submits one task per payload, waits for each in **submission
    order** (so reassembly is deterministic), and bounds every wait with
    ``timeout_s``.  Failure semantics:

    * a :class:`~repro.errors.ReproError` raised inside a worker propagates
      as-is (domain errors keep their type and exit-code mapping);
    * any other worker exception, a dead process, or a timeout becomes a
      :class:`~repro.errors.ParallelError` whose message (and ``.shard``
      attribute) names the shard.

    The pool is a context manager; ``map`` may be called repeatedly while
    open.  Telemetry objects are all optional.
    """

    def __init__(self, workers: int = 1, backend: str = "auto", *,
                 chunk_size: Optional[int] = None, timeout_s: float = 300.0,
                 tracer=None, hook=None, registry=None, faults=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"backend must be one of {PARALLEL_BACKENDS}, got {backend!r}"
            )
        if timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        if backend == "auto":
            backend = "serial" if workers == 1 else "process"
        self.workers = int(workers)
        self.backend = backend
        self.chunk_size = chunk_size
        self.timeout_s = float(timeout_s)
        self.tracer = tracer
        self.hook = hook
        self.registry = registry
        self.faults = faults
        #: injectable monotonic clock: deadline accounting only (the actual
        #: blocking waits still use the executor's real-time primitives)
        self._clock = clock
        self._executor = None

    @classmethod
    def from_config(cls, config: ParallelConfig, *, workers=None,
                    tracer=None, hook=None, registry=None,
                    faults=None) -> "WorkerPool":
        """Build a pool from :class:`ParallelConfig`, optionally overriding
        the worker count (the CLI's ``--workers`` flag wins)."""
        return cls(
            workers=config.workers if workers is None else workers,
            backend=config.backend,
            chunk_size=config.chunk_size,
            timeout_s=config.timeout_s,
            tracer=tracer,
            hook=hook,
            registry=registry,
            faults=faults,
        )

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the backing executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _ensure_executor(self):
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pool",
                )
            elif self.backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                )
        return self._executor

    # -- telemetry plumbing --------------------------------------------------

    def _make_wires(self, count: int) -> List[Optional[TraceWire]]:
        """Reserve a ``parallel_shard`` span ID per shard, at dispatch.

        Reserving in submission order makes the merged trace's ID layout a
        pure function of the workload — completion order never shows.  With
        no tracer attached the shards run uninstrumented (wire ``None``),
        keeping the fast path telemetry-free.
        """
        if self.tracer is None:
            return [None] * count
        context = self.tracer.current_context()
        return [
            TraceWire(
                trace_id=context.trace_id,
                parent_span_id=self.tracer.reserve_span_id(),
                origin=f"w{shard}",
            )
            for shard in range(count)
        ]

    def _record_shard(self, task: str, shard: int, seconds: float,
                      wire: Optional[TraceWire] = None,
                      shipped: Optional[ShardTelemetry] = None) -> None:
        if self.tracer is not None:
            metadata = {"shard": shard, "task": task, "backend": self.backend}
            if wire is not None:
                metadata["worker"] = wire.origin
            self.tracer.add_record(
                "parallel_shard", seconds,
                span_id=wire.parent_span_id if wire is not None else None,
                **metadata,
            )
            if shipped is not None:
                self.tracer.absorb(shipped.spans)
        if self.registry is not None:
            self.registry.counter(
                "parallel_tasks_total", labels={"task": task}
            ).inc()
            if shipped is not None:
                self.registry.merge_snapshot(shipped.metrics)

    def _record_failure(self, task: str, shard: int, detail: str) -> None:
        if self.hook is not None:
            # RunLoggerHook increments parallel_worker_failures_total itself,
            # so when a hook is attached the registry is reached through it
            # (counting directly too would double-count shared registries).
            self.hook.on_worker_crash(shard, task=task, detail=detail)
        elif self.registry is not None:
            self.registry.counter(
                "parallel_worker_failures_total", labels={"task": task}
            ).inc()

    def _failure(self, task: str, shard: int, detail: str,
                 kind: str = "error") -> ParallelError:
        self._record_failure(task, shard, detail)
        return ParallelError(
            f"worker for shard {shard} of task {task!r} failed: {detail}",
            shard=shard, task=task, kind=kind,
        )

    # -- dispatch ------------------------------------------------------------

    def _crash_flags(self, count: int) -> List[bool]:
        """Consume injected crash flags for shards [0, count) at dispatch.

        Consuming up front (rather than per-shard inside workers) keeps the
        fault observable even on the process backend, where a dead worker
        breaks the whole pool before later shards report: the parent knows
        exactly which shard was sabotaged and names it in the error.
        """
        if self.faults is None:
            return [False] * count
        return [self.faults.take_worker_crash(shard)
                for shard in range(count)]

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any], *,
            task: str = "map",
            timeout_s: Optional[float] = None) -> List[Any]:
        """Apply ``fn`` to each payload; return results in payload order.

        ``timeout_s`` overrides the pool-level default for this call only:
        each task must produce its result within ``timeout_s`` of *its own
        dispatch* (not of the parent starting to wait on it), so one hung
        worker surfaces as a :class:`~repro.errors.ParallelError` with
        ``kind="timeout"`` after roughly one timeout, never ``N`` of them.
        The serial backend runs in the caller's thread and cannot preempt a
        hung function; timeouts are only enforced on the thread/process
        backends.
        """
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(
                f"timeout_s must be positive, got {timeout_s}"
            )
        effective = self.timeout_s if timeout_s is None else float(timeout_s)
        payloads = list(payloads)
        crash_flags = self._crash_flags(len(payloads))
        wires = self._make_wires(len(payloads))
        if self.backend == "serial":
            return self._map_serial(fn, payloads, crash_flags, wires, task)
        return self._map_executor(fn, payloads, crash_flags, wires, task,
                                  effective)

    def _unpack(self, outcome: Any, wire: Optional[TraceWire],
                ) -> Tuple[Any, Optional[ShardTelemetry]]:
        """Split a shard's return into (caller result, shipped telemetry)."""
        if wire is not None and isinstance(outcome, ShardTelemetry):
            return outcome.result, outcome
        return outcome, None

    def _map_serial(self, fn, payloads, crash_flags, wires,
                    task) -> List[Any]:
        results: List[Any] = []
        for shard, payload in enumerate(payloads):
            start = time.perf_counter()
            if crash_flags[shard]:
                raise self._failure(
                    task, shard,
                    f"injected worker crash (exit {CRASH_EXIT_CODE})",
                    kind="crash",
                )
            try:
                outcome = (fn(payload) if wires[shard] is None
                           else _run_wired(fn, payload, wires[shard]))
            except ReproError:
                raise
            except Exception as exc:  # noqa: BLE001 — contained, re-typed
                raise self._failure(
                    task, shard, f"{type(exc).__name__}: {exc}"
                ) from exc
            result, shipped = self._unpack(outcome, wires[shard])
            results.append(result)
            self._record_shard(task, shard, time.perf_counter() - start,
                               wires[shard], shipped)
        return results

    def _map_executor(self, fn, payloads, crash_flags, wires,
                      task, timeout_s) -> List[Any]:
        executor = self._ensure_executor()
        injected = [shard for shard, flag in enumerate(crash_flags) if flag]
        if self.backend == "thread" and injected:
            # os._exit in a thread would kill the whole interpreter; model
            # the crash as an immediate contained failure instead.
            raise self._failure(
                task, injected[0],
                f"injected worker crash (exit {CRASH_EXIT_CODE})",
                kind="crash",
            )
        starts: List[float] = []
        deadlines: List[float] = []
        futures: List[Future] = []
        try:
            for shard, payload in enumerate(payloads):
                starts.append(time.perf_counter())
                deadlines.append(self._clock() + timeout_s)
                futures.append(executor.submit(
                    _shard_entry, fn, payload, shard, crash_flags[shard],
                    wires[shard],
                ))
            results: List[Any] = []
            for shard, future in enumerate(futures):
                # Each task's deadline runs from its own dispatch, so time
                # spent waiting on earlier shards counts against it too —
                # a single hung worker costs ~one timeout, not one per shard.
                remaining = deadlines[shard] - self._clock()
                try:
                    outcome = future.result(timeout=max(0.0, remaining))
                except FutureTimeoutError:
                    raise self._failure(
                        task, shard,
                        f"no result within {timeout_s:g}s of dispatch",
                        kind="timeout",
                    ) from None
                except BrokenExecutor as exc:
                    # A dead process breaks every pending future; if we know
                    # which shard was sabotaged, name it — otherwise name
                    # the first shard observed broken.
                    blamed = injected[0] if injected else shard
                    raise self._failure(
                        task, blamed,
                        f"worker process died ({exc or 'broken pool'})",
                        kind="crash",
                    ) from exc
                except ReproError:
                    raise
                except Exception as exc:  # noqa: BLE001
                    raise self._failure(
                        task, shard, f"{type(exc).__name__}: {exc}"
                    ) from exc
                result, shipped = self._unpack(outcome, wires[shard])
                results.append(result)
                self._record_shard(
                    task, shard, time.perf_counter() - starts[shard],
                    wires[shard], shipped,
                )
            return results
        except BaseException:
            self.close()
            raise


__all__ = [
    "CRASH_EXIT_CODE",
    "ShardTelemetry",
    "TraceWire",
    "WorkerPool",
    "chunk_indices",
    "shard_rng",
    "shard_seed",
]
