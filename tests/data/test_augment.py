"""Dihedral-4 data augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import DIHEDRAL4, PairedDataset, augment_dataset, bbox_center_rc
from repro.data.augment import _transform_center, _transform_image
from repro.errors import DataError


def asymmetric_dataset(count=4, size=16):
    rng = np.random.default_rng(3)
    masks = rng.uniform(size=(count, 3, size, size)).astype(np.float32)
    resists = np.zeros((count, 1, size, size), dtype=np.float32)
    for i in range(count):
        r = 2 + i
        resists[i, 0, r : r + 3, 4 : 4 + 5] = 1.0
    return PairedDataset(masks, resists, tech_name="T")


class TestTransformPrimitives:
    @given(
        rotations=st.integers(0, 3), flip=st.booleans(),
        row=st.integers(0, 15), col=st.integers(0, 15),
    )
    @settings(deadline=None)
    def test_center_tracks_pixel(self, rotations, flip, row, col):
        """Transforming an image and its label keeps them consistent."""
        image = np.zeros((16, 16))
        image[row, col] = 1.0
        moved = _transform_image(image, rotations, flip)
        label = _transform_center(
            np.array([row, col], dtype=np.float32), 16, rotations, flip
        )
        hot = np.argwhere(moved > 0.5)[0]
        assert np.allclose(label, hot)

    def test_four_rotations_identity(self):
        image = np.random.default_rng(0).uniform(size=(8, 8))
        assert np.allclose(_transform_image(image, 4 % 4, False), image)


class TestAugmentDataset:
    def test_multiplies_count(self):
        ds = asymmetric_dataset(count=4)
        augmented = augment_dataset(ds)
        assert len(augmented) == 4 * len(DIHEDRAL4)

    def test_identity_transform_first(self):
        ds = asymmetric_dataset()
        augmented = augment_dataset(ds, transforms=[(0, False)])
        assert np.array_equal(augmented.masks, ds.masks)
        assert np.array_equal(augmented.centers, ds.centers)

    def test_centers_recomputed_consistently(self):
        ds = asymmetric_dataset()
        augmented = augment_dataset(ds)
        for i in range(len(augmented)):
            center = bbox_center_rc(augmented.resists[i, 0])
            assert np.allclose(augmented.centers[i], center, atol=1e-5)

    def test_transforms_are_distinct(self):
        ds = asymmetric_dataset(count=1)
        augmented = augment_dataset(ds)
        images = [augmented.resists[i, 0] for i in range(len(augmented))]
        distinct = {img.tobytes() for img in images}
        assert len(distinct) == len(DIHEDRAL4)

    def test_input_untouched(self):
        ds = asymmetric_dataset()
        before = ds.masks.copy()
        augment_dataset(ds)
        assert np.array_equal(ds.masks, before)

    def test_array_types_repeat(self):
        ds = asymmetric_dataset(count=2)
        augmented = augment_dataset(ds, transforms=[(0, False), (1, False)])
        assert len(augmented.array_types) == 4

    def test_validation(self):
        ds = asymmetric_dataset()
        with pytest.raises(DataError):
            augment_dataset(ds, transforms=[])
        with pytest.raises(DataError):
            augment_dataset(ds, transforms=[(5, False)])
