"""The rigorous simulation pipeline that mints golden resist patterns.

This is the left path of the paper's Figure 1 — optical model, resist model,
contour processing — standing in for Synopsys Sentaurus Lithography.  Two
fidelity modes exist:

* the **compact** mode images through cached SOCS kernels (used for dataset
  minting, where hundreds of clips share one optical setup);
* the **rigorous** mode integrates over the full discretized source via the
  Abbe formulation with a finely sampled source, which is the appropriately
  expensive reference timed in Table 4.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import ExperimentConfig
from ..errors import ResistError
from ..geometry import Grid, Point, Rect
from ..layout import (
    ContactClip,
    MaskLayout,
    ModelBasedOpc,
    build_mask_layout,
    decode_mask_rgb,
    render_transmission,
)
from ..optics import abbe_aerial_image
from ..optics.imaging import get_imager
from ..optics.source import annular_source
from ..resist import DevelopedPattern, develop, resist_window_image
from .runtime import StageTimer, Tracer


@dataclass(frozen=True)
class SimulatedClip:
    """Everything the rigorous flow produces for one clip."""

    layout: MaskLayout
    aerial: np.ndarray
    pattern: DevelopedPattern
    #: binary golden-resist window image at the training resolution
    golden_window: np.ndarray


class LithographySimulator:
    """Mask -> aerial -> resist -> golden window, for one experiment config."""

    def __init__(self, config: ExperimentConfig, resist_model: str = "vtr",
                 rigorous: bool = False, source_samples: int = 41,
                 rigorous_grid_size: Optional[int] = None,
                 focus_planes_nm: Optional[tuple] = None,
                 tracer: Optional[Tracer] = None):
        """``rigorous=True`` switches to reference-fidelity settings.

        ``tracer`` lets a caller share one span tracer across simulators
        (e.g. the CLI aggregating per-stage latency over a whole mint run);
        by default each simulator records into its own.

        A rigorous simulator does not use the compact SOCS shortcut: it
        integrates the discretized source directly (Abbe), typically on a
        finer spatial grid (``rigorous_grid_size``), and accounts for the
        finite resist thickness by imaging several focus planes through the
        resist stack (``focus_planes_nm``, offsets added to the nominal
        focus) and averaging their intensities.  These are the settings
        Table 4's "Rigorous" column is timed at.
        """
        self.config = config
        self.resist_model = resist_model
        self.rigorous = rigorous
        self._source_samples = source_samples
        grid_size = config.optical.grid_size
        if rigorous and rigorous_grid_size is not None:
            grid_size = rigorous_grid_size
        self.grid = Grid(
            size=grid_size,
            extent_nm=config.tech.cropped_clip_nm,
        )
        self.timer = StageTimer(tracer=tracer)
        self.tracer = self.timer.tracer
        if rigorous:
            self._fine_source = annular_source(
                config.optical.sigma_inner,
                config.optical.sigma_outer,
                samples=source_samples,
            )
            self._focus_planes = tuple(focus_planes_nm or (0.0,))

    @property
    def clip_center(self) -> Point:
        mid = self.config.tech.cropped_clip_nm / 2.0
        return Point(mid, mid)

    # -- stages ---------------------------------------------------------------

    def aerial_image(self, layout: MaskLayout) -> np.ndarray:
        """Optical-model stage: transmission map to aerial intensity."""
        with self.timer.stage("rasterize"):
            transmission = render_transmission(layout, self.grid)
        return self._image_transmission(transmission)

    def _image_transmission(self, transmission: np.ndarray) -> np.ndarray:
        """Aerial intensity of an already-rasterized transmission map."""
        with self.timer.stage("optical"):
            if self.rigorous:
                intensity = np.zeros_like(transmission, dtype=np.float64)
                for offset in self._focus_planes:
                    optical = dataclasses.replace(
                        self.config.optical,
                        defocus_nm=self.config.optical.defocus_nm + offset,
                    )
                    intensity += abbe_aerial_image(
                        transmission,
                        optical,
                        self.grid.extent_nm,
                        source=self._fine_source,
                    )
                return intensity / len(self._focus_planes)
            imager = get_imager(
                self.config.optical,
                self.grid.extent_nm,
                self.config.optical.grid_size,
            )
            return imager.aerial_image(transmission)

    def develop_pattern(self, aerial: np.ndarray) -> DevelopedPattern:
        """Resist-model stage."""
        with self.timer.stage("resist"):
            return develop(
                aerial, self.grid, self.config.resist, model=self.resist_model
            )

    def golden_window(self, pattern: DevelopedPattern) -> np.ndarray:
        """Contour-processing stage: crop + resample the target's window."""
        with self.timer.stage("contour"):
            return resist_window_image(
                pattern,
                self.clip_center,
                self.config.tech.resist_window_nm,
                self.config.image.resist_image_px,
            )

    def transmission_from_mask_image(self, mask_rgb: np.ndarray) -> np.ndarray:
        """Mask transmission on the simulation grid from a rendered RGB mask.

        The serving fallback enters the simulator holding only the
        Section 3.1 color encoding, not the source :class:`MaskLayout`; all
        three feature classes transmit on a binary mask, so the channel sum
        (clipped to 1) recovers the transmission map to within one image
        pixel of rasterization error.
        """
        mask_rgb = np.asarray(mask_rgb, dtype=np.float64)
        target, neighbors, srafs = decode_mask_rgb(mask_rgb)
        coverage = np.clip(target + neighbors + srafs, 0.0, 1.0)
        size = self.grid.size
        if coverage.shape == (size, size):
            return coverage
        # Resample the image raster onto the simulation grid (area-average
        # when shrinking by an integer factor, bilinear otherwise).
        in_size = coverage.shape[0]
        if coverage.shape[0] != coverage.shape[1]:
            raise ResistError(
                f"mask image must be square, got {coverage.shape}"
            )
        if in_size % size == 0:
            factor = in_size // size
            return coverage.reshape(
                size, factor, size, factor
            ).mean(axis=(1, 3))
        from scipy import ndimage

        scale = in_size / size
        centers = (np.arange(size) + 0.5) * scale - 0.5
        rows, cols = np.meshgrid(centers, centers, indexing="ij")
        return ndimage.map_coordinates(
            coverage, [rows, cols], order=1, mode="nearest"
        )

    def simulate_mask_image(self, mask_rgb: np.ndarray) -> np.ndarray:
        """Golden-window simulation entering at a rendered mask image.

        This is the serving degradation path: when the GAN fails a clip, the
        rigorous substrate answers it from the same ``(3, H, W)`` encoding
        the model consumed.  Returns the binary resist window at the
        training resolution; raises :class:`ResistError` when the target
        fails to print (the caller decides how to degrade further).
        """
        with self.timer.stage("rasterize"):
            transmission = self.transmission_from_mask_image(mask_rgb)
        aerial = self._image_transmission(transmission)
        pattern = self.develop_pattern(aerial)
        return self.golden_window(pattern)

    # -- whole-clip entry points ------------------------------------------------

    def simulate_layout(self, layout: MaskLayout) -> SimulatedClip:
        aerial = self.aerial_image(layout)
        pattern = self.develop_pattern(aerial)
        window = self.golden_window(pattern)
        return SimulatedClip(
            layout=layout, aerial=aerial, pattern=pattern, golden_window=window
        )

    def simulate_clip(self, clip: ContactClip,
                      model_based_opc: bool = False) -> SimulatedClip:
        """RET + simulation for a drawn clip.

        With ``model_based_opc=True`` the target contact additionally goes
        through iterative model-based correction driven by this simulator.
        """
        layout = build_mask_layout(clip)
        if model_based_opc:
            layout = self.refine_target_opc(layout)
        return self.simulate_layout(layout)

    def printed_window_bbox(self, pattern: DevelopedPattern) -> Rect:
        """Sub-grid-resolution bounding box of the printed target contact.

        Measured on the finely resampled resist window rather than the raw
        simulation grid, so model-based OPC feedback is not quantized to the
        coarse optical pixel.
        """
        from ..geometry.contours import bounding_box_of_mask

        window_nm = self.config.tech.resist_window_nm
        out_px = self.config.image.resist_image_px
        window = resist_window_image(
            pattern, self.clip_center, window_nm, out_px
        )
        box = bounding_box_of_mask(window)
        if box is None:  # pragma: no cover - window extraction already raises
            raise ResistError("target contact failed to print")
        rlo, clo, rhi, chi = box
        nm = window_nm / out_px
        origin_x = self.clip_center.x - window_nm / 2.0
        origin_y = self.clip_center.y - window_nm / 2.0
        return Rect(
            origin_x + clo * nm,
            origin_y + (out_px - rhi) * nm,
            origin_x + chi * nm,
            origin_y + (out_px - rlo) * nm,
        )

    def refine_target_opc(self, layout: MaskLayout) -> MaskLayout:
        """Model-based OPC of the target contact on top of the rule-based pass."""

        def printed_bbox(candidate: Rect) -> Rect:
            trial = MaskLayout(
                tech=layout.tech,
                array_type=layout.array_type,
                target=candidate,
                neighbors=layout.neighbors,
                srafs=layout.srafs,
                drawn_target=layout.drawn_target,
                extent_nm=layout.extent_nm,
            )
            aerial = self.aerial_image(trial)
            pattern = self.develop_pattern(aerial)
            return self.printed_window_bbox(pattern)

        engine = ModelBasedOpc(printed_bbox)
        refined = engine.correct(layout.drawn_target, initial=layout.target)
        return MaskLayout(
            tech=layout.tech,
            array_type=layout.array_type,
            target=refined,
            neighbors=layout.neighbors,
            srafs=layout.srafs,
            drawn_target=layout.drawn_target,
            extent_nm=layout.extent_nm,
        )
