"""Per-record dataset integrity: manifests, validation, quarantine, repair.

The whole modeling claim rests on trustworthy golden data — a silently
corrupted or geometrically invalid record poisons both the CGAN and the
center CNN without any visible failure.  This module makes the data layer
self-healing, in four pieces:

**Manifests.**  :func:`~repro.data.save_dataset` writes a schema-versioned
``<dataset>.manifest.json`` sidecar (via the atomic-write helpers) carrying
one SHA-256 content hash per ``(mask, resist, center, array_type)`` record
plus the :class:`SynthesisProvenance` needed to regenerate any record
deterministically: the synthesis-config digest, the base seed, and each
record's attempt index in the per-record seeding schedule.

**Validation.**  :class:`DatasetValidator` checks every record structurally
(manifest hash, finiteness, value range, the Section 3.1 mask-encoding
contract via :mod:`repro.serving.admission`) and geometrically (resist
window area/CD/fragmentation and stored-center consistency against the same
node-derived :class:`~repro.serving.GeometryBounds` that back the serving
:class:`~repro.serving.OutputGuard`).  The bounds are calibrated so freshly
synthesized golden data never flags — the no-false-positive guarantee is
property-tested.

**Quarantine.**  Validation yields a typed :class:`QuarantineReport` naming
each bad record's index and machine-readable reason tags.  Load policies
(see :func:`~repro.data.load_dataset`) choose what to do with it: ``strict``
raises :class:`~repro.errors.DataIntegrityError`, ``salvage`` returns the
verified subset plus the report.

**Repair.**  :func:`repair_dataset` re-synthesizes exactly the quarantined
records from manifest provenance and proves the results hash-identical to
the manifest before rewriting the archive — corruption recovery is
deterministic end to end, not best-effort.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import ExperimentConfig
from ..errors import DataError, DataIntegrityError
from ..runtime.atomic import atomic_write_json
from .dataset import PairedDataset
from .encoding import bbox_center_rc

PathLike = Union[str, Path]

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: the only content-hash algorithm manifests currently use
HASH_ALGORITHM = "sha256"

#: quarantine reason tags produced by the validator itself; mask-encoding
#: violations additionally reuse the :mod:`repro.serving.admission` tags and
#: golden-geometry violations the :class:`~repro.serving.OutputGuard` ones
REASON_HASH = "hash"
REASON_NON_FINITE = "non-finite"
REASON_RANGE = "range"
REASON_CENTER_DRIFT = "center-drift"


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------


def _canonical(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(array, dtype=np.float32))


def record_hash(mask: np.ndarray, resist: np.ndarray,
                center: np.ndarray, array_type: str) -> str:
    """SHA-256 content hash of one ``(mask, resist, center, array_type)``.

    Arrays are canonicalized to C-contiguous float32 and the shapes are
    folded in, so the hash is invariant to storage layout but sensitive to
    every stored value.
    """
    digest = hashlib.sha256()
    for array in (mask, resist, center):
        canonical = _canonical(array)
        digest.update(str(canonical.shape).encode("utf-8"))
        digest.update(canonical.tobytes())
    digest.update(str(array_type).encode("utf-8"))
    return digest.hexdigest()


def dataset_record_hashes(dataset: PairedDataset) -> Tuple[str, ...]:
    """The per-record content hashes of a dataset, in record order."""
    return tuple(
        record_hash(
            dataset.masks[i], dataset.resists[i], dataset.centers[i],
            str(dataset.array_types[i]),
        )
        for i in range(len(dataset))
    )


def synthesis_digest(config: ExperimentConfig) -> str:
    """SHA-256 fingerprint of the config fields that shape synthesized data.

    Covers the technology node (minus ``num_clips`` — the clip *count* does
    not alter any individual record under per-record seeding), the optical
    and resist models, and the image geometry.  Training, telemetry,
    recovery, serving, and data-policy knobs are deliberately excluded so a
    dataset minted once can be validated and repaired under any training
    setup.
    """
    tech = dataclasses.asdict(config.tech)
    tech.pop("num_clips", None)
    payload = {
        "tech": tech,
        "optical": dataclasses.asdict(config.optical),
        "resist": dataclasses.asdict(config.resist),
        "image": dataclasses.asdict(config.image),
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Provenance and manifest
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SynthesisProvenance:
    """Everything needed to re-synthesize any single record bit-identically.

    ``attempts[i]`` is the synthesis attempt index that produced record
    ``i``; together with ``base_seed`` it seeds the record's own child
    generator (see :func:`~repro.data.synthesis.record_rng`), so repair can
    regenerate record ``i`` without replaying the records before it.
    ``config_digest`` (see :func:`synthesis_digest`) proves the caller's
    config matches the one the data was minted with.
    """

    config_digest: str
    base_seed: int
    attempts: Tuple[int, ...]
    resist_model: str = "vtr"
    model_based_opc: bool = False
    tech_name: str = ""

    def to_dict(self) -> dict:
        return {
            "config_digest": self.config_digest,
            "base_seed": self.base_seed,
            "attempts": list(self.attempts),
            "resist_model": self.resist_model,
            "model_based_opc": self.model_based_opc,
            "tech_name": self.tech_name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SynthesisProvenance":
        try:
            return cls(
                config_digest=str(payload["config_digest"]),
                base_seed=int(payload["base_seed"]),
                attempts=tuple(int(a) for a in payload["attempts"]),
                resist_model=str(payload.get("resist_model", "vtr")),
                model_based_opc=bool(payload.get("model_based_opc", False)),
                tech_name=str(payload.get("tech_name", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed manifest provenance: {exc}") from exc


@dataclass(frozen=True)
class DatasetManifest:
    """The integrity sidecar of one saved dataset archive."""

    record_hashes: Tuple[str, ...]
    tech_name: str = ""
    provenance: Optional[SynthesisProvenance] = None
    schema_version: int = MANIFEST_SCHEMA_VERSION
    hash_algorithm: str = HASH_ALGORITHM

    @property
    def num_records(self) -> int:
        return len(self.record_hashes)

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "hash_algorithm": self.hash_algorithm,
            "num_records": self.num_records,
            "tech_name": self.tech_name,
            "record_hashes": list(self.record_hashes),
        }
        if self.provenance is not None:
            payload["provenance"] = self.provenance.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict, source: str = "manifest"
                  ) -> "DatasetManifest":
        if not isinstance(payload, dict):
            raise DataError(f"{source} is not a JSON object")
        version = payload.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise DataError(
                f"{source} has schema_version {version!r}, expected "
                f"{MANIFEST_SCHEMA_VERSION}"
            )
        algorithm = payload.get("hash_algorithm", HASH_ALGORITHM)
        if algorithm != HASH_ALGORITHM:
            raise DataError(
                f"{source} uses unsupported hash algorithm {algorithm!r}"
            )
        hashes = payload.get("record_hashes")
        if not isinstance(hashes, list) or not all(
                isinstance(h, str) and h for h in hashes):
            raise DataError(f"{source} carries no valid record_hashes list")
        declared = payload.get("num_records")
        if declared is not None and declared != len(hashes):
            raise DataError(
                f"{source} declares {declared} records but lists "
                f"{len(hashes)} hashes"
            )
        provenance = None
        if payload.get("provenance") is not None:
            provenance = SynthesisProvenance.from_dict(payload["provenance"])
            if len(provenance.attempts) != len(hashes):
                raise DataError(
                    f"{source} provenance covers {len(provenance.attempts)} "
                    f"records but the manifest lists {len(hashes)} hashes"
                )
        return cls(
            record_hashes=tuple(hashes),
            tech_name=str(payload.get("tech_name", "")),
            provenance=provenance,
        )

    def save(self, path: PathLike) -> Path:
        """Write the manifest atomically; returns the final path."""
        return atomic_write_json(path, self.to_dict())


def manifest_path_for(dataset_path: PathLike) -> Path:
    """The sidecar manifest path of a dataset archive (``ds.npz`` ->
    ``ds.manifest.json``)."""
    path = Path(dataset_path)
    if path.suffix == ".npz":
        path = path.with_suffix("")
    return path.with_name(path.name + ".manifest.json")


def build_manifest(dataset: PairedDataset,
                   provenance: Optional[SynthesisProvenance] = None
                   ) -> DatasetManifest:
    """Hash every record of ``dataset`` into a fresh manifest.

    ``provenance`` defaults to whatever the dataset itself carries (set by
    :func:`~repro.data.synthesize_dataset`); derived datasets without one
    still get hash-only manifests — validatable, but not repairable.
    """
    if provenance is None:
        provenance = getattr(dataset, "provenance", None)
    if provenance is not None and len(provenance.attempts) != len(dataset):
        raise DataError(
            f"provenance covers {len(provenance.attempts)} records but the "
            f"dataset has {len(dataset)}"
        )
    return DatasetManifest(
        record_hashes=dataset_record_hashes(dataset),
        tech_name=dataset.tech_name,
        provenance=provenance,
    )


def load_manifest(dataset_path: PathLike) -> Optional[DatasetManifest]:
    """Load the sidecar manifest of a dataset archive.

    Returns ``None`` when no manifest exists (a legacy archive — validation
    degrades to structural checks); raises :class:`DataError` when a
    manifest exists but cannot be parsed (fail closed: a mangled manifest
    is itself corruption).
    """
    path = manifest_path_for(dataset_path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise DataError(f"unreadable dataset manifest {path}: {exc}") from exc
    return DatasetManifest.from_dict(payload, source=str(path))


# ---------------------------------------------------------------------------
# Validation and quarantine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordIssue:
    """One quarantined record: its index, reason tags, and evidence."""

    index: int
    reasons: Tuple[str, ...]
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "reasons": list(self.reasons),
            "detail": self.detail,
        }


@dataclass(frozen=True)
class QuarantineReport:
    """The validator's verdict on one dataset: what is bad, and why.

    ``issues`` holds one :class:`RecordIssue` per quarantined record (in
    index order); ``manifest_missing`` marks a legacy archive whose
    validation could only be structural (no hash check).
    """

    num_records: int
    issues: Tuple[RecordIssue, ...] = ()
    manifest_missing: bool = False

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def quarantined(self) -> int:
        return len(self.issues)

    @property
    def quarantined_indices(self) -> Tuple[int, ...]:
        return tuple(issue.index for issue in self.issues)

    @property
    def clean_indices(self) -> Tuple[int, ...]:
        bad = set(self.quarantined_indices)
        return tuple(i for i in range(self.num_records) if i not in bad)

    def counts_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for issue in self.issues:
            for reason in issue.reasons:
                counts[reason] = counts.get(reason, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "num_records": self.num_records,
            "quarantined": self.quarantined,
            "manifest_missing": self.manifest_missing,
            "counts_by_reason": self.counts_by_reason(),
            "issues": [issue.to_dict() for issue in self.issues],
        }

    def summary(self) -> str:
        """One human-readable line naming indices and reason counts."""
        if self.ok:
            return f"all {self.num_records} records verified"
        indices = ", ".join(str(i) for i in self.quarantined_indices)
        reasons = ", ".join(
            f"{tag}={count}" for tag, count in self.counts_by_reason().items()
        )
        return (
            f"quarantined {self.quarantined}/{self.num_records} records "
            f"(indices {indices}; reasons {reasons})"
        )


class DatasetValidator:
    """Structural + golden-geometry validation of every dataset record.

    Structural checks: manifest hash agreement, finiteness, [0, 1] value
    range, and the Section 3.1 mask-encoding contract (shape, channel
    semantics) reusing :func:`repro.serving.admission.admit_masks`.  Golden
    checks: the resist window must satisfy the same node-derived
    area/CD/fragmentation bounds the serving
    :class:`~repro.serving.OutputGuard` enforces on generated windows, and
    its recomputed bounding-box center must agree with the stored center
    label to within ``config.data.center_tolerance_px``.
    """

    def __init__(self, config: ExperimentConfig):
        # Imported lazily: repro.serving pulls in repro.core, which imports
        # this package — a module-level import would be circular.
        from ..serving.guards import GeometryBounds, OutputGuard

        self.config = config
        self.bounds = GeometryBounds.from_config(
            config, center_tolerance_px=config.data.center_tolerance_px
        )
        self._guard = OutputGuard(config, bounds=self.bounds)

    # -- per-record checks --------------------------------------------------

    def _structural_reasons(self, dataset: PairedDataset,
                            index: int) -> List[Tuple[str, str]]:
        reasons: List[Tuple[str, str]] = []
        resist = dataset.resists[index]
        center = dataset.centers[index]
        if not np.all(np.isfinite(resist)) or not np.all(np.isfinite(center)):
            reasons.append((REASON_NON_FINITE,
                            "resist window or center is non-finite"))
        else:
            lo, hi = float(resist.min()), float(resist.max())
            if lo < 0.0 or hi > 1.0:
                reasons.append((
                    REASON_RANGE,
                    f"resist values span [{lo:.3g}, {hi:.3g}], outside [0, 1]",
                ))
        return reasons

    def _golden_reasons(self, dataset: PairedDataset,
                        index: int) -> List[Tuple[str, str]]:
        window = dataset.resists[index, 0]
        report = self._guard.check(
            window, expected_center=dataset.centers[index]
        )
        if not report.degenerate:
            return []
        # Rename the guard's prediction-flavored tag: here the disagreement
        # is between a *stored label* and the window it claims to describe.
        tags = tuple(
            REASON_CENTER_DRIFT if tag == "off-center" else tag
            for tag in report.reasons if tag != "clipped"
        )
        detail = (
            f"golden window implausible: components={report.components}, "
            f"area={report.area_px:.0f}px, cd={report.cd_px}, "
            f"center_error={report.center_error_px}"
        )
        return [(tag, detail) for tag in tags]

    # -- dataset-level validation --------------------------------------------

    def validate(self, dataset: PairedDataset,
                 manifest: Optional[DatasetManifest] = None
                 ) -> QuarantineReport:
        """Check every record; returns the (possibly empty) quarantine.

        A manifest whose record count disagrees with the archive is not a
        per-record problem — the archive was rewritten wholesale — so it
        raises :class:`DataError` instead of quarantining.
        """
        from ..serving.admission import admit_masks

        count = len(dataset)
        if manifest is not None and manifest.num_records != count:
            raise DataError(
                f"manifest covers {manifest.num_records} records but the "
                f"archive holds {count}; the archive was rewritten outside "
                "save_dataset"
            )

        per_record: Dict[int, List[Tuple[str, str]]] = {}

        def note(index: int, reason: str, detail: str) -> None:
            per_record.setdefault(index, []).append((reason, detail))

        if manifest is not None:
            stored = manifest.record_hashes
            computed = dataset_record_hashes(dataset)
            for index, (want, got) in enumerate(zip(stored, computed)):
                if want != got:
                    note(index, REASON_HASH,
                         f"content hash {got[:12]}... does not match "
                         f"manifest {want[:12]}...")

        # Mask-encoding contract, exactly as the serving boundary enforces it.
        admitted = admit_masks(dataset.masks, self.config)
        for rejection in admitted.rejections:
            note(rejection.clip, rejection.reason, str(rejection.error))

        for index in range(count):
            for reason, detail in self._structural_reasons(dataset, index):
                note(index, reason, detail)
            # Geometry on a window already known non-finite is meaningless.
            if not any(r == REASON_NON_FINITE for r, _ in
                       per_record.get(index, ())):
                for reason, detail in self._golden_reasons(dataset, index):
                    note(index, reason, detail)

        issues = []
        for index in sorted(per_record):
            entries = per_record[index]
            seen = []
            for reason, _ in entries:
                if reason not in seen:
                    seen.append(reason)
            issues.append(RecordIssue(
                index=index,
                reasons=tuple(seen),
                detail="; ".join(dict.fromkeys(d for _, d in entries)),
            ))
        return QuarantineReport(
            num_records=count,
            issues=tuple(issues),
            manifest_missing=manifest is None,
        )


def validate_dataset(dataset: PairedDataset, config: ExperimentConfig,
                     manifest: Optional[DatasetManifest] = None
                     ) -> QuarantineReport:
    """Convenience wrapper: ``DatasetValidator(config).validate(...)``."""
    return DatasetValidator(config).validate(dataset, manifest)


def strict_check(report: QuarantineReport, source: str = "dataset") -> None:
    """Raise :class:`DataIntegrityError` if the report quarantined anything."""
    if report.ok:
        return
    raise DataIntegrityError(
        f"{source} failed integrity validation: {report.summary()}",
        indices=report.quarantined_indices,
        reasons=tuple(issue.reasons for issue in report.issues),
    )


# ---------------------------------------------------------------------------
# Repair by re-synthesis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepairReport:
    """What a repair pass regenerated, with proof of hash identity."""

    repaired_indices: Tuple[int, ...]
    num_records: int
    verified_hashes: Tuple[str, ...] = ()
    reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def repaired(self) -> int:
        return len(self.repaired_indices)

    def to_dict(self) -> dict:
        return {
            "repaired": self.repaired,
            "repaired_indices": list(self.repaired_indices),
            "num_records": self.num_records,
            "verified_hashes": list(self.verified_hashes),
            "counts_by_reason": dict(self.reasons),
        }


def repair_dataset(path: PathLike, config: ExperimentConfig,
                   report: Optional[QuarantineReport] = None,
                   tracer=None, *,
                   workers: Optional[int] = None,
                   faults=None, hook=None, registry=None) -> RepairReport:
    """Re-synthesize exactly the quarantined records of a saved dataset.

    Loads the archive and its manifest, validates (or accepts a prior
    ``report``), regenerates each quarantined record from the manifest's
    synthesis provenance, and proves every regenerated record's content
    hash is bit-identical to the manifest entry before atomically rewriting
    the archive.  Raises :class:`DataIntegrityError` when repair is
    impossible (no manifest, no provenance, config digest mismatch, or a
    regenerated record that does not reproduce its manifest hash) — repair
    is deterministic or it is refused.

    ``workers`` (default: ``config.parallel.workers``) fans the quarantined
    attempts out over a :class:`~repro.runtime.parallel.WorkerPool`; the
    hash proof and the rewrite always happen in the parent, so a parallel
    repair is exactly as strict as a serial one (and, since every record
    regenerates from its own provenance, bit-identical to it).
    """
    from ..runtime.parallel import WorkerPool, chunk_indices
    from ..sim import LithographySimulator
    from .io import load_dataset, save_dataset
    from .synthesis import _synthesize_shard, synthesize_record

    path = Path(path)
    dataset = load_dataset(path)
    manifest = load_manifest(path)
    if manifest is None:
        raise DataIntegrityError(
            f"cannot repair {path}: no manifest sidecar "
            f"({manifest_path_for(path)}) to repair against"
        )
    provenance = manifest.provenance
    if provenance is None:
        raise DataIntegrityError(
            f"cannot repair {path}: manifest carries no synthesis provenance"
        )
    expected_digest = synthesis_digest(config)
    if provenance.config_digest != expected_digest:
        raise DataIntegrityError(
            f"cannot repair {path}: the supplied config's synthesis digest "
            f"{expected_digest[:12]}... does not match the manifest's "
            f"{provenance.config_digest[:12]}... (different node, optics, "
            "resist, or image geometry)"
        )

    if report is None:
        report = DatasetValidator(config).validate(dataset, manifest)
    if report.ok:
        return RepairReport(
            repaired_indices=(), num_records=len(dataset),
        )

    if workers is None:
        workers = config.parallel.workers
    indices = report.quarantined_indices
    regenerated_records = {}
    simulator = None
    if workers > 1 and len(indices) > 1:
        from ..optics.imaging import get_imager

        # Pre-warm the decomposition once in the parent (forked workers
        # inherit it; spawned ones hit the verified disk cache).
        warm = LithographySimulator(
            config, resist_model=provenance.resist_model,
        )
        get_imager(config.optical, warm.grid.extent_nm,
                   config.optical.grid_size)
        attempt_list = [provenance.attempts[index] for index in indices]
        with WorkerPool(
            workers=workers, backend=config.parallel.backend,
            chunk_size=config.parallel.chunk_size,
            timeout_s=config.parallel.timeout_s,
            tracer=tracer, hook=hook, registry=registry, faults=faults,
        ) as pool:
            payloads = [
                (config, provenance.base_seed,
                 tuple(attempt_list[chunk.start:chunk.stop]),
                 provenance.resist_model, provenance.model_based_opc)
                for chunk in chunk_indices(
                    len(attempt_list), workers, config.parallel.chunk_size)
            ]
            shards = pool.map(
                _synthesize_shard, payloads, task="repair_dataset"
            )
        regenerated_records = {
            attempt: record for shard in shards for attempt, record in shard
        }
    else:
        simulator = LithographySimulator(
            config, resist_model=provenance.resist_model, tracer=tracer,
        )
    masks = dataset.masks.copy()
    resists = dataset.resists.copy()
    centers = dataset.centers.copy()
    array_types = np.array([str(t) for t in dataset.array_types], dtype=object)

    verified = []
    for index in indices:
        attempt = provenance.attempts[index]
        if simulator is None:
            record = regenerated_records[attempt]
        else:
            record = synthesize_record(
                config, simulator, provenance.base_seed, attempt,
                model_based_opc=provenance.model_based_opc,
            )
        if record is None:
            raise DataIntegrityError(
                f"cannot repair {path}: record {index} (attempt {attempt}) "
                "no longer prints under the supplied config — provenance "
                "does not reproduce"
            )
        mask, resist, center, array_type = record
        # Hash in the stored (1, H, W) channel layout, matching
        # dataset_record_hashes — the shape is folded into the digest.
        regenerated = record_hash(mask, resist[np.newaxis], np.asarray(
            center, dtype=np.float32), array_type)
        if regenerated != manifest.record_hashes[index]:
            raise DataIntegrityError(
                f"cannot repair {path}: regenerated record {index} hashes "
                f"{regenerated[:12]}..., manifest expects "
                f"{manifest.record_hashes[index][:12]}... — this environment "
                "does not reproduce the original synthesis bit-exactly"
            )
        masks[index] = mask
        resists[index, 0] = resist
        centers[index] = np.asarray(center, dtype=np.float32)
        array_types[index] = array_type
        verified.append(regenerated)

    repaired = PairedDataset(
        masks, resists, centers, array_types.astype(str),
        tech_name=dataset.tech_name,
    )
    # The manifest is already correct — the archive is rewritten to match
    # it, so the existing sidecar is preserved as-is.
    save_dataset(repaired, path, manifest=False)
    return RepairReport(
        repaired_indices=report.quarantined_indices,
        num_records=len(dataset),
        verified_hashes=tuple(verified),
        reasons=report.counts_by_reason(),
    )
