"""Sweep spec expansion: dotted paths, grid product, digest identity."""

import dataclasses

import pytest

from repro.config import ExperimentConfig, SweepConfig, tiny
from repro.errors import ConfigError
from repro.sweep import (
    SweepSpec,
    expand_grid,
    set_config_value,
    sweep_digest,
    trial_digest,
)


class TestSetConfigValue:
    def test_replaces_nested_leaf_functionally(self):
        base = tiny()
        updated = set_config_value(base, "training.seed", 99)
        assert updated.training.seed == 99
        assert base.training.seed != 99 or base is not updated
        assert updated.model == base.model

    def test_top_level_path(self):
        base = tiny()
        updated = set_config_value(
            base, "sweep", SweepConfig(max_retries=3))
        assert updated.sweep.max_retries == 3

    def test_unknown_segment_names_the_path(self):
        with pytest.raises(ConfigError, match="unknown parameter 'nope'"):
            set_config_value(tiny(), "training.nope", 1)

    def test_walking_into_a_leaf_rejected(self):
        with pytest.raises(ConfigError, match="walks into non-config"):
            set_config_value(tiny(), "training.seed.deeper", 1)

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            set_config_value(tiny(), "", 1)

    def test_validators_rerun_on_the_rebuilt_spine(self):
        with pytest.raises(ConfigError):
            set_config_value(tiny(), "training.batch_size", 0)


class TestExpandGrid:
    def test_cartesian_product_insertion_order(self):
        grid = {"a": [1, 2], "b": ["x", "y"]}
        assert expand_grid(grid) == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_empty_grid_is_single_base_trial(self):
        assert expand_grid({}) == [{}]

    def test_empty_value_list_rejected(self):
        with pytest.raises(ConfigError, match="no values"):
            expand_grid({"a": []})

    def test_scalar_values_rejected(self):
        with pytest.raises(ConfigError, match="must be a list"):
            expand_grid({"a": 3})
        with pytest.raises(ConfigError, match="must be a list"):
            expand_grid({"a": "abc"})


class TestDigests:
    def test_trial_digest_stable_and_config_sensitive(self):
        base = tiny()
        assert trial_digest(base) == trial_digest(tiny())
        changed = set_config_value(base, "training.seed", 99)
        assert trial_digest(changed) != trial_digest(base)

    def test_supervision_knobs_never_change_identity(self):
        base = tiny()
        tightened = dataclasses.replace(
            base, sweep=SweepConfig(max_retries=5, max_failed_trials=3))
        assert trial_digest(tightened) == trial_digest(base)

    def test_sweep_digest_orders_matter(self):
        assert sweep_digest(["a", "b"]) != sweep_digest(["b", "a"])
        assert sweep_digest(["a", "b"]) == sweep_digest(["a", "b"])


class TestSweepSpec:
    def test_from_grid_materializes_named_trials(self):
        spec = SweepSpec.from_grid(tiny(), {"training.seed": [0, 1, 2]})
        assert len(spec) == 3
        for index, trial in enumerate(spec.trials):
            assert trial.index == index
            assert trial.name == f"trial-{index:03d}-{trial.digest[:8]}"
            assert trial.config.training.seed == index
            assert trial.params == {"training.seed": index}
            assert isinstance(trial.config, ExperimentConfig)

    def test_duplicate_trial_configs_rejected(self):
        with pytest.raises(ConfigError, match="identical trial configs"):
            SweepSpec.from_grid(tiny(), {"training.seed": [7, 7]})

    def test_spec_digest_matches_chained_trial_digests(self):
        spec = SweepSpec.from_grid(tiny(), {"training.seed": [0, 1]})
        assert spec.digest == sweep_digest(
            [trial.digest for trial in spec.trials])

    def test_empty_grid_single_trial_of_base(self):
        base = tiny()
        spec = SweepSpec.from_grid(base, {})
        assert len(spec) == 1
        assert spec.trials[0].digest == trial_digest(base)
