"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Layers create parameters during construction; ``backward`` passes add to
    ``grad`` (so gradients from multiple forward passes accumulate, which the
    GAN training loop relies on), and optimizers read ``grad`` then call
    :meth:`zero_grad`.
    """

    __slots__ = ("name", "value", "grad", "trainable")

    def __init__(self, value: np.ndarray, name: str = "param",
                 trainable: bool = True):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name
        self.trainable = trainable

    @property
    def shape(self):
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def add_grad(self, grad: np.ndarray) -> None:
        if grad.shape != self.value.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} with shape {self.value.shape}"
            )
        self.grad += grad.astype(np.float32, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"
