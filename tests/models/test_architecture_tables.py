"""The paper's Tables 1 and 2, verified layer by layer at paper scale.

These tests construct the 256x256 paper-scale networks and assert the
summary rows match the published tables: ops, filter specs, and output sizes.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.models import (
    build_center_cnn,
    build_discriminator,
    build_generator,
    build_threshold_cnn,
)
from repro.models.discriminator import discriminator_input_channels


@pytest.fixture(scope="module")
def paper_model_config():
    return ModelConfig()  # 256 px, base 64 — the paper's setting


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestTable1Generator:
    def test_encoder_rows(self, paper_model_config, rng):
        """Table 1 generator encoder column."""
        generator = build_generator(paper_model_config, rng)
        rows = generator.summary((3, 256, 256))
        assert rows[0] == {"layer": "Input", "filter": "-", "output": "256x256x3"}
        expected_encoder = [
            ("Conv-ReLU", "128x128x64"),
            ("Conv-BN-ReLU", "64x64x128"),
            ("Conv-BN-ReLU", "32x32x256"),
            ("Conv-BN-ReLU", "16x16x512"),
            ("Conv-BN-ReLU", "8x8x512"),
            ("Conv-BN-ReLU", "4x4x512"),
            ("Conv-BN-ReLU", "2x2x512"),
            ("Conv-BN-ReLU", "1x1x512"),
        ]
        for i, (layer, output) in enumerate(expected_encoder):
            assert rows[1 + i]["layer"] == layer
            assert rows[1 + i]["filter"] == "5x5,2"
            assert rows[1 + i]["output"] == output

    def test_decoder_rows(self, paper_model_config, rng):
        """Table 1 generator decoder column, including the two dropouts."""
        generator = build_generator(paper_model_config, rng)
        rows = generator.summary((3, 256, 256))
        decoder = rows[9:]
        expected = [
            ("Deconv-BN-LReLU", "2x2x512"),
            ("Dropout", "2x2x512"),
            ("Deconv-BN-LReLU", "4x4x512"),
            ("Dropout", "4x4x512"),
            ("Deconv-BN-LReLU", "8x8x512"),
            ("Deconv-BN-LReLU", "16x16x512"),
            ("Deconv-BN-LReLU", "32x32x256"),
            ("Deconv-BN-LReLU", "64x64x128"),
            ("Deconv-BN-LReLU", "128x128x64"),
            ("Deconv-LReLU", "256x256x3"),
        ]
        assert len(decoder) == len(expected)
        for row, (layer, output) in zip(decoder, expected):
            assert row["layer"] == layer
            assert row["output"] == output

    def test_forward_shape_paper_scale(self, paper_model_config, rng):
        generator = build_generator(paper_model_config, rng)
        assert generator.output_shape((3, 256, 256)) == (3, 256, 256)

    def test_reduced_scale_topology(self, rng):
        config = ModelConfig(image_size=64, base_filters=16)
        generator = build_generator(config, rng)
        assert generator.output_shape((3, 64, 64)) == (3, 64, 64)


class TestTable1Discriminator:
    def test_rows(self, paper_model_config, rng):
        discriminator = build_discriminator(paper_model_config, rng)
        rows = discriminator.summary((6, 256, 256))
        assert rows[0]["output"] == "256x256x6"
        expected = [
            ("Conv-LReLU", "128x128x64"),
            ("Conv-BN-LReLU", "64x64x128"),
            ("Conv-BN-LReLU", "32x32x256"),
            ("Conv-BN-LReLU", "16x16x512"),
        ]
        for i, (layer, output) in enumerate(expected):
            assert rows[1 + i]["layer"] == layer
            assert rows[1 + i]["output"] == output
        assert rows[5] == {
            "layer": "Flatten", "filter": "-", "output": "131072"
        }
        assert rows[-1]["layer"].startswith("FC")
        assert rows[-1]["output"] == "1"

    def test_input_channels(self, paper_model_config):
        assert discriminator_input_channels(paper_model_config) == 6

    def test_single_logit(self, paper_model_config, rng):
        discriminator = build_discriminator(paper_model_config, rng)
        assert discriminator.output_shape((6, 256, 256)) == (1,)


class TestTable2CenterCnn:
    def test_rows(self, paper_model_config, rng):
        cnn = build_center_cnn(paper_model_config, rng)
        rows = cnn.summary((3, 256, 256))
        assert rows[0]["output"] == "256x256x3"
        expected = [
            ("Conv-ReLU-BN-P", "7x7,1", "128x128x32"),
            ("Conv-ReLU-BN-P", "3x3,1", "64x64x64"),
            ("Conv-ReLU-BN-P", "3x3,1", "32x32x64"),
            ("Conv-ReLU-BN-P", "3x3,1", "16x16x64"),
            ("Conv-ReLU-BN-P", "3x3,1", "8x8x64"),
        ]
        for i, (layer, filt, output) in enumerate(expected):
            assert rows[1 + i]["layer"] == layer
            assert rows[1 + i]["filter"] == filt
            assert rows[1 + i]["output"] == output
        assert rows[6]["layer"] == "Flatten"
        # FC-64, ReLU+Dropout, FC-2 tail.
        assert rows[-3]["layer"] == "FC-ReLU"
        assert rows[-3]["output"] == "64"
        assert rows[-2]["layer"] == "Dropout"
        assert rows[-1]["layer"] == "FC"
        assert rows[-1]["output"] == "2"

    def test_output_is_two_coordinates(self, paper_model_config, rng):
        cnn = build_center_cnn(paper_model_config, rng)
        assert cnn.output_shape((3, 256, 256)) == (2,)

    def test_reduced_scale_ends_at_8x8(self, rng):
        config = ModelConfig(image_size=64, base_filters=16)
        cnn = build_center_cnn(config, rng)
        rows = cnn.summary((3, 64, 64))
        conv_rows = [r for r in rows if r["layer"].startswith("Conv")]
        assert conv_rows[-1]["output"] == "8x8x64"


class TestThresholdCnn:
    def test_four_outputs(self, paper_model_config, rng):
        cnn = build_threshold_cnn(paper_model_config, rng)
        assert cnn.output_shape((1, 256, 256)) == (4,)

    def test_single_channel_input(self, paper_model_config, rng):
        cnn = build_threshold_cnn(paper_model_config, rng)
        x = np.zeros((2, 1, 256, 256), dtype=np.float32)
        assert cnn.forward(x).shape == (2, 4)


class TestParameterCounts:
    def test_generator_parameter_count_is_stable(self, paper_model_config, rng):
        """Architecture regression guard: the paper-scale generator size."""
        generator = build_generator(paper_model_config, rng)
        count = generator.num_parameters()
        # 16 (de)conv layers of 5x5 kernels between 3..512 channels.
        assert 50_000_000 < count < 90_000_000

    def test_reduced_generator_much_smaller(self, rng):
        config = ModelConfig(image_size=64, base_filters=16)
        generator = build_generator(config, rng)
        assert generator.num_parameters() < 4_000_000
