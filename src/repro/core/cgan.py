"""Conditional-GAN training for lithography modeling (Section 3.2).

Implements the objective of Eqs. (1)-(3): the discriminator maximizes
``log D(x, y) + log(1 - D(x, G(x, z)))`` while the generator minimizes the
adversarial term plus ``lambda * ||y - G(x, z)||_1``.  Training alternates
one discriminator step with one generator step per mini-batch, using Adam
with the paper's hyper-parameters (lr 0.0002, betas (0.5, 0.999),
lambda 100, batch size 4).  The noise ``z`` enters through decoder dropout,
as in the pix2pix lineage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import ModelConfig, TrainingConfig
from ..errors import TrainingError
from ..models import build_discriminator, build_generator
from ..nn import Adam, Sequential, bce_with_logits, l1_loss
from ..runtime.checkpoint import (
    CheckpointManager,
    collect_rngs,
    extract_extras,
    load_checkpoint_source,
    pack_state,
    unpack_state,
)
from ..runtime.faults import FaultPlan
from ..runtime.recovery import RecoveryPolicy
from ..telemetry.hooks import TelemetryHook
from .trainer import predict_in_batches

#: phase label used in checkpoints, fault sites, and telemetry events
CGAN_PHASE = "cgan"


@dataclass
class CganHistory:
    """Loss curves (Figure 9) and prediction snapshots (Figure 8)."""

    generator_loss: List[float] = field(default_factory=list)
    discriminator_loss: List[float] = field(default_factory=list)
    l1_loss: List[float] = field(default_factory=list)
    #: per-epoch wall-clock seconds (time-to-quality for Figure 9 plots)
    seconds: List[float] = field(default_factory=list)
    #: epoch -> generated images for the tracked snapshot inputs
    snapshots: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def epochs_trained(self) -> int:
        return len(self.generator_loss)


class CganModel:
    """Generator + discriminator pair with the Eq. (3) training loop."""

    def __init__(self, model_config: ModelConfig,
                 training_config: TrainingConfig, rng: np.random.Generator):
        self.model_config = model_config
        self.training_config = training_config
        self.generator = build_generator(model_config, rng)
        self.discriminator = build_discriminator(model_config, rng)
        self.opt_g = Adam(
            self.generator.parameters(),
            learning_rate=training_config.learning_rate,
            beta1=training_config.adam_beta1,
            beta2=training_config.adam_beta2,
        )
        self.opt_d = Adam(
            self.discriminator.parameters(),
            learning_rate=training_config.learning_rate,
            beta1=training_config.adam_beta1,
            beta2=training_config.adam_beta2,
        )

    # -- target encoding ---------------------------------------------------

    def expand_targets(self, resists: np.ndarray) -> np.ndarray:
        """Lift (N, 1, H, W) golden resists to the generator's channel count."""
        channels = self.model_config.resist_channels
        if resists.ndim != 4 or resists.shape[1] != 1:
            raise TrainingError(
                f"expected (N, 1, H, W) resists, got {resists.shape}"
            )
        return np.repeat(resists.astype(np.float32), channels, axis=1)

    # -- one optimization step -----------------------------------------------

    def train_step(self, masks: np.ndarray,
                   targets: np.ndarray) -> Tuple[float, float, float]:
        """One alternating D/G update; returns (d_loss, g_gan_loss, l1)."""
        if masks.shape[0] != targets.shape[0]:
            raise TrainingError("mask/target batch size mismatch")
        ones = np.ones((masks.shape[0], 1), dtype=np.float32)
        zeros = np.zeros_like(ones)

        # Generator forward (dropout active: this *is* the noise z).
        fake = self.generator.forward(masks, training=True)

        # ---- discriminator step: maximize log D(x,y) + log(1 - D(x,G)).
        self.opt_d.zero_grad()
        real_pair = np.concatenate([masks, targets], axis=1)
        logits_real = self.discriminator.forward(real_pair, training=True)
        loss_real, grad_real = bce_with_logits(logits_real, ones)
        self.discriminator.backward(grad_real)

        fake_pair = np.concatenate([masks, fake], axis=1)
        logits_fake = self.discriminator.forward(fake_pair, training=True)
        loss_fake, grad_fake = bce_with_logits(logits_fake, zeros)
        self.discriminator.backward(grad_fake)
        self.opt_d.step()
        d_loss = loss_real + loss_fake

        # ---- generator step: non-saturating GAN loss + lambda * L1.
        logits_gen = self.discriminator.forward(fake_pair, training=True)
        g_gan_loss, grad_logits = bce_with_logits(logits_gen, ones)
        grad_pair = self.discriminator.backward(grad_logits)
        grad_fake_from_d = grad_pair[:, self.model_config.mask_channels :]

        l1_value, l1_grad = l1_loss(fake, targets)
        total_grad = grad_fake_from_d + self.training_config.lambda_l1 * l1_grad

        self.opt_g.zero_grad()
        self.generator.backward(total_grad)
        self.opt_g.step()

        if not (np.isfinite(d_loss) and np.isfinite(g_gan_loss)):
            raise TrainingError(
                f"GAN training diverged (d_loss={d_loss}, g_loss={g_gan_loss})"
            )
        return d_loss, g_gan_loss, l1_value

    # -- checkpointable state -----------------------------------------------

    def _training_rngs(self, rng: np.random.Generator) -> List[np.random.Generator]:
        """Every RNG the training loop draws from (shuffle + dropout noise)."""
        return collect_rngs(rng, self.generator, self.discriminator)

    def _pack_training_state(self, history: CganHistory,
                             rngs, epoch: int):
        """Detached snapshot of nets, optimizers, RNG streams, and history."""
        snapshots = {
            f"snapshot/{snap_epoch}": images
            for snap_epoch, images in history.snapshots.items()
        }
        return pack_state(
            epoch=epoch, phase=CGAN_PHASE,
            nets={"generator": self.generator,
                  "discriminator": self.discriminator},
            optimizers={"opt_g": self.opt_g, "opt_d": self.opt_d},
            rngs=rngs,
            history={
                "generator_loss": history.generator_loss,
                "discriminator_loss": history.discriminator_loss,
                "l1_loss": history.l1_loss,
                "seconds": history.seconds,
            },
            arrays=snapshots,
        )

    def _restore_training_state(self, payload, meta, history: CganHistory,
                                rngs) -> int:
        """Apply a packed snapshot; returns the epoch it was taken at."""
        epoch = unpack_state(
            payload, meta,
            nets={"generator": self.generator,
                  "discriminator": self.discriminator},
            optimizers={"opt_g": self.opt_g, "opt_d": self.opt_d},
            rngs=rngs, expect_phase=CGAN_PHASE,
        )
        saved = meta.get("history", {})
        history.generator_loss[:] = [float(v) for v in saved.get("generator_loss", [])]
        history.discriminator_loss[:] = [
            float(v) for v in saved.get("discriminator_loss", [])
        ]
        history.l1_loss[:] = [float(v) for v in saved.get("l1_loss", [])]
        history.seconds[:] = [float(v) for v in saved.get("seconds", [])]
        history.snapshots.clear()
        for key, images in extract_extras(payload).items():
            if key.startswith("snapshot/"):
                history.snapshots[int(key.split("/", 1)[1])] = images
        return epoch

    # -- full training loop -------------------------------------------------------

    def fit(self, masks: np.ndarray, resists: np.ndarray,
            rng: np.random.Generator,
            snapshot_inputs: Optional[np.ndarray] = None,
            hook: Optional[TelemetryHook] = None,
            checkpoints: Optional[CheckpointManager] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Any] = None,
            recovery: Optional[RecoveryPolicy] = None,
            faults: Optional[FaultPlan] = None) -> CganHistory:
        """Train for ``training_config.epochs`` epochs.

        ``snapshot_inputs`` (a small stack of mask images) enables Figure 8:
        after each epoch in ``training_config.snapshot_epochs`` the
        generator's eval-mode predictions for those inputs are recorded.

        With ``hook`` attached, ``hook.on_epoch_end(epoch, d_loss, g_loss,
        l1, seconds)`` fires with the epoch-mean losses after every epoch;
        the default ``hook=None`` adds no per-batch work whatsoever.

        Fault tolerance (all off by default):

        * ``checkpoints`` + ``checkpoint_every`` persist atomic snapshots of
          generator/discriminator/optimizer/RNG/history state every N epochs
          (and always at the final epoch).
        * ``resume_from`` — a checkpoint path, a checkpoint directory, or
          ``"latest"`` (resolved through ``checkpoints``) — restores a
          snapshot and continues mid-schedule **bit-exactly**: the resumed
          run replays the same shuffle and dropout streams an uninterrupted
          run would have used.
        * ``recovery`` catches a non-finite-loss :class:`TrainingError`,
          rolls back to the last completed epoch, backs off the learning
          rate, and retries within the policy's budget.
        * ``faults`` injects NaN batches or mid-epoch interrupts at
          scheduled ``(phase, epoch, batch)`` sites for recovery drills.
        """
        targets = self.expand_targets(resists)
        count = masks.shape[0]
        batch = self.training_config.batch_size
        history = CganHistory()
        snapshot_epochs = set(self.training_config.snapshot_epochs)
        total = self.training_config.epochs

        rngs = None
        if (checkpoints is not None or resume_from is not None
                or recovery is not None):
            rngs = self._training_rngs(rng)

        start_epoch = 1
        if resume_from is not None:
            payload, meta = load_checkpoint_source(resume_from, checkpoints)
            start_epoch = self._restore_training_state(
                payload, meta, history, rngs
            ) + 1

        last_good = None
        if recovery is not None and start_epoch <= total:
            last_good = self._pack_training_state(
                history, rngs, epoch=start_epoch - 1
            )

        epoch = start_epoch
        while epoch <= total:
            epoch_start = time.perf_counter()
            order = rng.permutation(count)
            d_losses, g_losses, l1_losses = [], [], []
            try:
                for batch_index, start in enumerate(range(0, count, batch)):
                    if faults is not None:
                        faults.on_batch_start(CGAN_PHASE, epoch, batch_index)
                    idx = order[start : start + batch]
                    batch_targets = targets[idx]
                    if faults is not None:
                        batch_targets = faults.poison(
                            CGAN_PHASE, epoch, batch_index, batch_targets
                        )
                    try:
                        d_loss, g_gan, l1_value = self.train_step(
                            masks[idx], batch_targets
                        )
                    except TrainingError as exc:
                        raise TrainingError(
                            f"epoch {epoch}, batch {batch_index}: {exc}"
                        ) from exc
                    d_losses.append(d_loss)
                    g_losses.append(
                        g_gan + self.training_config.lambda_l1 * l1_value
                    )
                    l1_losses.append(l1_value)
            except TrainingError as exc:
                if recovery is None:
                    raise
                recovery.register_failure(exc)  # re-raises once exhausted
                restored_epoch = self._restore_training_state(
                    *last_good, history, rngs
                )
                new_lr = recovery.apply_backoff((self.opt_g, self.opt_d))
                recovery.notify_rollback(
                    hook, phase=CGAN_PHASE, failed_epoch=epoch,
                    restored_epoch=restored_epoch, learning_rate=new_lr,
                    reason=str(exc),
                )
                epoch = restored_epoch + 1
                continue
            epoch_seconds = time.perf_counter() - epoch_start
            history.discriminator_loss.append(float(np.mean(d_losses)))
            history.generator_loss.append(float(np.mean(g_losses)))
            history.l1_loss.append(float(np.mean(l1_losses)))
            history.seconds.append(epoch_seconds)
            if hook is not None:
                hook.on_epoch_end(
                    epoch,
                    history.discriminator_loss[-1],
                    history.generator_loss[-1],
                    history.l1_loss[-1],
                    epoch_seconds,
                )
            if snapshot_inputs is not None and epoch in snapshot_epochs:
                history.snapshots[epoch] = self.generate(snapshot_inputs)
            if recovery is not None:
                recovery.record_success()
            due = checkpoints is not None and (
                epoch % checkpoint_every == 0 or epoch == total
            )
            if recovery is not None or due:
                packed = self._pack_training_state(history, rngs, epoch=epoch)
                if recovery is not None:
                    last_good = packed
                if due:
                    path = checkpoints.save(
                        step=epoch, arrays=packed[0], meta=packed[1],
                        loss=history.l1_loss[-1],
                    )
                    if hook is not None:
                        hook.on_checkpoint(
                            CGAN_PHASE, epoch, str(path),
                            loss=history.l1_loss[-1],
                        )
            epoch += 1
        return history

    # -- inference ------------------------------------------------------------------

    def generate(self, masks: np.ndarray, batch_size: int = 8,
                 sample_noise: bool = False) -> np.ndarray:
        """Generator output for a stack of mask images.

        ``sample_noise=True`` keeps decoder dropout active (stochastic
        samples); the default is the deterministic eval mode.
        """
        return predict_in_batches(
            self.generator, masks, batch_size=batch_size, training=sample_noise
        )

    def predict_mono(self, masks: np.ndarray, batch_size: int = 8) -> np.ndarray:
        """Channel-averaged generator output clipped to [0, 1]: (N, H, W)."""
        generated = self.generate(masks, batch_size=batch_size)
        return np.clip(generated.mean(axis=1), 0.0, 1.0)
