"""Network architectures: Table 1 (CGAN) and Table 2 (center CNN)."""

from .generator import build_generator
from .discriminator import build_discriminator
from .center_cnn import build_center_cnn
from .threshold_cnn import build_threshold_cnn

__all__ = [
    "build_generator",
    "build_discriminator",
    "build_center_cnn",
    "build_threshold_cnn",
]
