"""The baseline threshold-prediction CNN (the paper's references [10, 12]).

The machine-learning baseline the paper compares against does *not* learn the
resist pattern end-to-end: it runs optical simulation first, feeds the aerial
image of the target window to a CNN that predicts **four slicing thresholds**
(one per bounding-box edge), and finishes with contour processing.  This
module provides that CNN; :mod:`repro.baselines.ref12` wires it into the full
flow.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import ModelConfig
from ..errors import ConfigError
from ..nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from ..nn.initializers import he_normal

#: number of predicted slicing thresholds (left, right, bottom, top edges)
NUM_THRESHOLDS = 4


def build_threshold_cnn(config: ModelConfig,
                        rng: np.random.Generator) -> Sequential:
    """CNN mapping a 1-channel aerial window to four slicing thresholds."""
    if config.image_size < 16 or config.image_size & (config.image_size - 1):
        raise ConfigError(
            f"image_size must be a power of two >= 16, got {config.image_size}"
        )
    stages = int(math.log2(config.image_size)) - 3  # stop at an 8x8 map
    layers = []
    in_channels = 1
    for i in range(stages):
        width = config.center_first_filters if i == 0 else config.center_filters
        kernel = 7 if i == 0 else 3
        layers.append(
            Conv2D(
                in_channels, width, kernel, 1, rng,
                weight_init=he_normal, name=f"thr{i}",
            )
        )
        layers.append(ReLU())
        layers.append(BatchNorm(width, name=f"thr{i}.bn"))
        layers.append(MaxPool2D(2))
        in_channels = width

    layers.append(Flatten())
    layers.append(
        Dense(in_channels * 8 * 8, config.center_fc_units, rng, name="thr_fc1")
    )
    layers.append(ReLU())
    layers.append(Dropout(config.aux_dropout_rate, rng))
    layers.append(
        Dense(config.center_fc_units, NUM_THRESHOLDS, rng, name="thr_fc2")
    )
    return Sequential(layers, name="threshold_cnn")
