"""Overload protection: deadlines, bounded queueing, and a circuit breaker.

Three independent mechanisms keep a serving node answering under stress:

* :class:`Deadline` — a per-batch wall-clock budget.  Once exceeded, the
  service stops spending time on retries and fallback simulation and serves
  best-effort model outputs instead; every admitted clip is still answered.
* :class:`BoundedWorkQueue` — a FIFO of pending clips with a hard capacity.
  ``push`` raises :class:`~repro.errors.OverloadError` when full, which the
  admission layer converts into per-clip ``overload`` rejections
  (backpressure to the caller rather than unbounded memory growth).
* :class:`CircuitBreaker` — after ``threshold`` *consecutive* clip-level
  guard failures, the breaker opens and the service goes simulator-only
  (the model is not even invoked).  After ``probe_after`` further clips it
  half-opens: one probe clip runs through the model, and its guard verdict
  decides between closing (healthy again) and re-opening.  Transitions are
  deterministic in the clip stream, so drills can assert them exactly.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, List, Optional, Tuple

from ..errors import OverloadError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class Deadline:
    """A wall-clock budget started at construction; ``None`` never expires."""

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def exceeded(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed())


class BoundedWorkQueue:
    """FIFO work queue that sheds load instead of growing without bound."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise OverloadError(
                f"queue capacity must be >= 1, got {capacity}",
                reason="capacity",
            )
        self.capacity = capacity
        self._items = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        if self.full:
            raise OverloadError(
                f"work queue full ({self.capacity} clips)",
                reason="overload",
            )
        self._items.append(item)

    def pop_many(self, count: int) -> List:
        """Dequeue up to ``count`` items in FIFO order."""
        out = []
        while self._items and len(out) < count:
            out.append(self._items.popleft())
        return out


class CircuitBreaker:
    """Consecutive-failure breaker with a clip-count probe schedule.

    State machine: ``closed`` → (``threshold`` consecutive failures) →
    ``open`` → (``probe_after`` clips served without the model) →
    ``half_open`` → one model probe → ``closed`` on success, ``open`` on
    failure.  ``on_transition(from_state, to_state, reason)`` fires on every
    edge; ``transitions`` keeps the full history for assertions.
    """

    def __init__(self, threshold: int, probe_after: int,
                 on_transition: Optional[Callable[[str, str, str], None]] = None):
        self.threshold = threshold
        self.probe_after = probe_after
        self.state = BREAKER_CLOSED
        self.transitions: List[Tuple[str, str, str]] = []
        self._on_transition = on_transition
        self._consecutive_failures = 0
        self._clips_since_open = 0

    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self.state
        self.state = to_state
        self.transitions.append((from_state, to_state, reason))
        if self._on_transition is not None:
            self._on_transition(from_state, to_state, reason)

    @property
    def trips(self) -> int:
        """How many times the breaker has opened."""
        return sum(1 for _, to, _ in self.transitions if to == BREAKER_OPEN)

    def allow_model(self) -> bool:
        """Decide, for the next clip, whether the model may run.

        In the open state this also advances the probe schedule: after
        ``probe_after`` denied clips the breaker half-opens and the next
        clip becomes the probe.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN:
            return True
        self._clips_since_open += 1
        if self._clips_since_open >= self.probe_after:
            self._transition(
                BREAKER_HALF_OPEN,
                f"probe after {self._clips_since_open} simulator-only clips",
            )
            return True
        return False

    def record_success(self) -> None:
        """A model-served clip passed the output guard."""
        self._consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_CLOSED, "probe clip passed the guard")

    def record_failure(self) -> None:
        """A model-served clip ended degenerate (retries exhausted)."""
        if self.state == BREAKER_HALF_OPEN:
            self._clips_since_open = 0
            self._transition(BREAKER_OPEN, "probe clip failed the guard")
            return
        self._consecutive_failures += 1
        if (self.state == BREAKER_CLOSED
                and self._consecutive_failures >= self.threshold):
            self._clips_since_open = 0
            self._transition(
                BREAKER_OPEN,
                f"{self._consecutive_failures} consecutive guard failures",
            )
