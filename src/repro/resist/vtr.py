"""Variable-threshold resist (VTR) model.

Constant thresholds lose accuracy at advanced nodes because the development
threshold depends on the *local* image: peak intensity, background level,
and image slope all modulate where the resist edge lands (Randall et al.,
the paper's reference [9]).  The compact VTR form implemented here perturbs
a base threshold with local aerial-image statistics:

    t(x) = base
         + a * (Imax_local(x) - Imax_ref)
         + b * (Imin_local(x) - Imin_ref)
         + c * |grad I(x)|,

with the local extrema taken over a window comparable to the contact size.
This is exactly the class of model the paper's baseline CNN [10, 12] learns
to replace, so minting golden data with it gives the learning problem the
right structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from ..config import ResistConfig
from ..errors import ResistError


def local_image_statistics(aerial: np.ndarray,
                           window_px: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local (Imax, Imin, |grad|) maps of an aerial image.

    ``window_px`` is the side of the square neighborhood for the extrema.
    The gradient magnitude is per-pixel (central differences).
    """
    if aerial.ndim != 2:
        raise ResistError(f"expected a 2-D image, got shape {aerial.shape}")
    if window_px < 1:
        raise ResistError(f"window_px must be >= 1, got {window_px}")
    imax = ndimage.maximum_filter(aerial, size=window_px, mode="wrap")
    imin = ndimage.minimum_filter(aerial, size=window_px, mode="wrap")
    gy, gx = np.gradient(aerial)
    slope = np.hypot(gx, gy)
    return imax, imin, slope


@dataclass(frozen=True)
class VariableThresholdModel:
    """VTR with linear sensitivity to local image statistics."""

    config: ResistConfig
    window_px: int = 9

    def __post_init__(self) -> None:
        if self.window_px < 1:
            raise ResistError(f"window_px must be >= 1, got {self.window_px}")

    def threshold_map(self, aerial: np.ndarray) -> np.ndarray:
        """Per-pixel slicing-threshold map from local image statistics."""
        cfg = self.config
        imax, imin, slope = local_image_statistics(aerial, self.window_px)
        threshold = (
            cfg.base_threshold
            + cfg.vtr_imax_coeff * (imax - cfg.vtr_imax_ref)
            + cfg.vtr_imin_coeff * (imin - cfg.vtr_imin_ref)
            + cfg.vtr_slope_coeff * slope
        )
        # Thresholds outside (0, 1) are unphysical for a normalized image.
        return np.clip(threshold, 0.02, 0.98)

    def printed(self, aerial: np.ndarray) -> np.ndarray:
        """Binary printed pattern: 1 where the resist clears."""
        return (aerial >= self.threshold_map(aerial)).astype(np.float64)
