"""CLI observability plane: traces, metric exports, profiles, `report`."""

import json
from collections import Counter

import pytest

from repro.cli import build_parser, main
from repro.telemetry import validate_chrome_trace


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("cli_observability")


@pytest.fixture(scope="module")
def observed_mint(workspace):
    """An 8-clip, 4-worker mint with every telemetry export switched on."""
    paths = {
        "dataset": workspace / "obs.npz",
        "log": workspace / "run.jsonl",
        "trace": workspace / "trace.json",
        "metrics": workspace / "metrics.json",
    }
    assert main([
        "mint", "--node", "N10", "--clips", "8", "--seed", "3",
        "--workers", "4", "--out", str(paths["dataset"]),
        "--log-json", str(paths["log"]),
        "--trace-out", str(paths["trace"]),
        "--metrics-out", str(paths["metrics"]),
    ]) == 0
    return paths


@pytest.fixture(scope="module")
def serial_metrics(workspace):
    path = workspace / "serial_metrics.json"
    assert main([
        "mint", "--node", "N10", "--clips", "8", "--seed", "3",
        "--workers", "1", "--out", str(workspace / "serial.npz"),
        "--metrics-out", str(path),
    ]) == 0
    return path


class TestParserSurface:
    @pytest.mark.parametrize("command,extra", [
        ("mint", ["--out", "x.npz"]),
        ("train", ["--dataset", "d.npz", "--out", "m"]),
        ("evaluate", ["--dataset", "d.npz", "--model", "m"]),
        ("predict", ["--dataset", "d.npz", "--model", "m"]),
        ("process-window", []),
    ])
    def test_trace_out_shared_across_subcommands(self, command, extra):
        args = build_parser().parse_args(
            [command, *extra, "--trace-out", "t.json"])
        assert args.trace_out == "t.json"

    @pytest.mark.parametrize("command,extra", [
        ("train", ["--dataset", "d.npz", "--out", "m"]),
        ("evaluate", ["--dataset", "d.npz", "--model", "m"]),
        ("predict", ["--dataset", "d.npz", "--model", "m"]),
    ])
    def test_profile_out_on_network_running_subcommands(self, command, extra):
        args = build_parser().parse_args(
            [command, *extra, "--profile-out", "p.json"])
        assert args.profile_out == "p.json"

    def test_mint_has_no_profile_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mint", "--out", "x.npz", "--profile-out", "p.json"])

    def test_report_parser_defaults(self):
        args = build_parser().parse_args(["report", "--log", "run.jsonl"])
        assert (args.trace, args.metrics, args.profile) == (None, None, None)
        assert not args.json


class TestMergedTrace:
    def test_trace_validates_and_loads(self, observed_mint):
        payload = json.loads(observed_mint["trace"].read_text())
        validate_chrome_trace(payload)

    def test_shard_spans_from_all_four_workers(self, observed_mint):
        payload = json.loads(observed_mint["trace"].read_text())
        events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        shards = [e for e in events if e["name"] == "parallel_shard"]
        assert {e["args"]["worker"] for e in shards} == \
            {"w0", "w1", "w2", "w3"}
        assert all(e["cat"] == "main" for e in shards)

    def test_worker_stage_spans_parent_to_their_shard(self, observed_mint):
        payload = json.loads(observed_mint["trace"].read_text())
        events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        shard_of = {e["args"]["span_id"]: e["args"]["worker"]
                    for e in events if e["name"] == "parallel_shard"}
        workers = [e for e in events if e["cat"] != "main"]
        assert workers, "worker spans must ship back to the parent trace"
        stages = Counter(e["name"] for e in workers)
        # each of the 8 clips runs the four simulator stages in its worker
        for stage in ("rasterize", "optical", "resist", "contour"):
            assert stages[stage] == 8
        for event in workers:
            parent = event["args"]["parent_id"]
            assert parent in shard_of
            assert shard_of[parent] == event["cat"]

    def test_one_trace_id_across_the_merge(self, observed_mint):
        payload = json.loads(observed_mint["trace"].read_text())
        ids = {e["args"]["trace_id"] for e in payload["traceEvents"]
               if e.get("ph") == "X"}
        assert len(ids) == 1


class TestAggregatedMetrics:
    def test_work_proportional_counters_match_serial(self, observed_mint,
                                                     serial_metrics):
        parallel = json.loads(
            observed_mint["metrics"].read_text())["metrics"]
        serial = json.loads(serial_metrics.read_text())["metrics"]

        def values(snapshot, name):
            return {
                tuple(sorted(series.get("labels", {}).items())):
                    series["value"]
                for series in snapshot[name]["series"]
            }

        assert values(parallel, "clips_processed_total") == \
            values(serial, "clips_processed_total")
        # every simulator stage ran the same number of times either way
        serial_stages = values(serial, "stages_total")
        parallel_stages = values(parallel, "stages_total")
        for labels, count in serial_stages.items():
            assert parallel_stages[labels] == count


class TestReportCommand:
    def test_reports_healthy_run_with_workers(self, observed_mint, capsys):
        assert main([
            "report", "--log", str(observed_mint["log"]),
            "--trace", str(observed_mint["trace"]),
            "--metrics", str(observed_mint["metrics"]),
        ]) == 0
        out = capsys.readouterr().out
        assert "runs: 1 (healthy)" in out
        assert "workers: 4 lanes" in out
        assert "mint" in out

    def test_json_output_is_pure_json(self, observed_mint, capsys):
        assert main([
            "report", "--log", str(observed_mint["log"]), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"] is True
        assert payload["runs"][0]["command"] == "mint"
        assert payload["runs"][0]["build"]["version"]

    def test_out_flag_saves_machine_readable_report(self, observed_mint,
                                                    workspace, capsys):
        saved = workspace / "report.json"
        assert main([
            "report", "--log", str(observed_mint["log"]),
            "--out", str(saved),
        ]) == 0
        assert json.loads(saved.read_text())["schema_version"] == 1

    def test_corrupt_log_exits_nonzero_naming_path(self, workspace, capsys):
        bad = workspace / "bad.jsonl"
        bad.write_text('{"event": "run_start"}\nnot json\n{"seq": 2}\n')
        assert main(["report", "--log", str(bad)]) == 1
        assert str(bad) in capsys.readouterr().err

    def test_missing_log_exits_nonzero_naming_path(self, workspace, capsys):
        missing = workspace / "absent.jsonl"
        assert main(["report", "--log", str(missing)]) == 1
        assert str(missing) in capsys.readouterr().err

    def test_corrupt_trace_exits_nonzero_naming_path(self, observed_mint,
                                                     workspace, capsys):
        bad = workspace / "bad_trace.json"
        bad.write_text("[not json")
        assert main([
            "report", "--log", str(observed_mint["log"]),
            "--trace", str(bad),
        ]) == 1
        assert str(bad) in capsys.readouterr().err


class TestLayerProfile:
    @pytest.fixture(scope="class")
    def profiled_train(self, observed_mint, workspace):
        paths = {
            "model": workspace / "model",
            "profile": workspace / "profile.json",
            "log": workspace / "train.jsonl",
        }
        assert main([
            "train", "--dataset", str(observed_mint["dataset"]),
            "--epochs", "1", "--out", str(paths["model"]),
            "--profile-out", str(paths["profile"]),
            "--log-json", str(paths["log"]),
        ]) == 0
        return paths

    def test_profile_artifact_has_layer_rows(self, profiled_train):
        payload = json.loads(profiled_train["profile"].read_text())
        assert payload["schema_version"] == 1
        networks = {row["network"] for row in payload["layers"]}
        assert {"generator", "discriminator", "center_cnn"} <= networks
        assert payload["forward_s"] > 0.0
        assert any(row["flops"] > 0 for row in payload["layers"])

    def test_report_surfaces_hot_layers(self, profiled_train, capsys):
        assert main([
            "report", "--log", str(profiled_train["log"]),
            "--profile", str(profiled_train["profile"]),
        ]) == 0
        out = capsys.readouterr().out
        assert "hot layers (top 5):" in out
