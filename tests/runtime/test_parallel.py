"""Deterministic fan-out engine: ordering, containment, telemetry."""

import time

import numpy as np
import pytest

from repro.config import ParallelConfig
from repro.errors import ConfigError, DataError, ParallelError
from repro.runtime import FaultPlan
from repro.runtime.parallel import (
    CRASH_EXIT_CODE,
    WorkerPool,
    chunk_indices,
    shard_rng,
    shard_seed,
)
from repro.telemetry import (
    MetricsRegistry,
    RunLoggerHook,
    Tracer,
    get_active_registry,
    get_active_tracer,
)


def _square(x):
    return x * x


def _jittered_square(x):
    # Later payloads finish first, so completion order is scrambled and
    # submission-order reassembly is actually exercised.
    time.sleep(0.02 * (4 - x % 5))
    return x * x


def _boom(x):
    raise ValueError(f"payload {x} exploded")


def _boom_on_one(x):
    if x == 1:
        raise ValueError(f"payload {x} exploded")
    return x


def _domain_error(x):
    raise DataError(f"payload {x} is bad data")


def _sleep_forever(x):
    time.sleep(30)
    return x



def _traced_double(x):
    # Worker-side telemetry: the pool installs a shard-local ambient tracer
    # and registry before calling us; spans and counts recorded here must
    # surface in the parent's merged trace and registry.
    tracer = get_active_tracer()
    registry = get_active_registry()
    with tracer.span("inner_stage", item=int(x)):
        pass
    registry.counter("work_items_total").inc()
    registry.histogram("item_value", buckets=(2.0, 8.0)).observe(float(x))
    return x * 2


class TestChunkIndices:
    @pytest.mark.parametrize("n,workers", [(1, 1), (5, 2), (8, 4), (3, 8)])
    def test_covers_range_contiguously(self, n, workers):
        chunks = chunk_indices(n, workers)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(n))
        assert len(chunks) <= max(workers, 1)

    def test_near_even_split(self):
        chunks = chunk_indices(10, 4)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1 or sizes[-1] < sizes[0]

    def test_chunk_size_caps_every_chunk(self):
        chunks = chunk_indices(10, 2, chunk_size=3)
        assert all(len(chunk) <= 3 for chunk in chunks)
        assert [i for chunk in chunks for i in chunk] == list(range(10))

    def test_empty_input(self):
        assert chunk_indices(0, 4) == []

    @pytest.mark.parametrize("n,workers,chunk_size",
                             [(-1, 1, None), (4, 0, None), (4, 2, 0)])
    def test_invalid_arguments(self, n, workers, chunk_size):
        with pytest.raises(ConfigError):
            chunk_indices(n, workers, chunk_size)


class TestShardSeeds:
    def test_deterministic_and_distinct(self):
        seeds = [shard_seed(7, shard) for shard in range(16)]
        assert seeds == [shard_seed(7, shard) for shard in range(16)]
        assert len(set(seeds)) == 16

    def test_rng_streams_differ(self):
        a = shard_rng(7, 0).integers(0, 2**32, size=4)
        b = shard_rng(7, 1).integers(0, 2**32, size=4)
        assert not np.array_equal(a, b)

    def test_negative_shard_rejected(self):
        with pytest.raises(ConfigError):
            shard_seed(7, -1)


class TestWorkerPoolMapping:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 3), ("process", 2),
    ])
    def test_results_in_submission_order(self, backend, workers):
        with WorkerPool(workers=workers, backend=backend) as pool:
            assert pool.map(_square, range(7)) == [i * i for i in range(7)]

    def test_thread_backend_reorders_completions_not_results(self):
        with WorkerPool(workers=4, backend="thread") as pool:
            assert pool.map(_jittered_square, range(8)) == [
                i * i for i in range(8)
            ]

    def test_auto_picks_serial_for_one_worker(self):
        assert WorkerPool(workers=1).backend == "serial"
        assert WorkerPool(workers=2).backend == "process"

    def test_map_reusable_while_open(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_square, [3]) == [9]

    def test_from_config_worker_override(self):
        pool = WorkerPool.from_config(ParallelConfig(workers=4), workers=2)
        assert pool.workers == 2
        assert WorkerPool.from_config(ParallelConfig(workers=4)).workers == 4


class TestFailureContainment:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("process", 2),
    ])
    def test_worker_exception_names_shard(self, backend, workers):
        with WorkerPool(workers=workers, backend=backend) as pool:
            with pytest.raises(ParallelError, match=r"shard 1 of task 'job'"):
                pool.map(_boom_on_one, [0, 1], task="job")

    def test_parallel_error_carries_shard_and_task(self):
        with WorkerPool(workers=1, backend="serial") as pool:
            with pytest.raises(ParallelError) as excinfo:
                pool.map(_boom, [5], task="job")
        assert excinfo.value.shard == 0
        assert excinfo.value.task == "job"

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("process", 2),
    ])
    def test_domain_errors_keep_their_type(self, backend, workers):
        with WorkerPool(workers=workers, backend=backend) as pool:
            with pytest.raises(DataError, match="bad data"):
                pool.map(_domain_error, [0, 1])

    def test_thread_timeout_becomes_parallel_error(self):
        with WorkerPool(workers=2, backend="thread", timeout_s=0.2) as pool:
            with pytest.raises(ParallelError, match="no result within"):
                pool.map(_sleep_forever, [0])


class TestCrashInjection:
    def test_serial_backend_raises_named_error(self):
        faults = FaultPlan(seed=0)
        faults.inject_worker_crash(1)
        with WorkerPool(workers=1, backend="serial", faults=faults) as pool:
            with pytest.raises(ParallelError, match="shard 1") as excinfo:
                pool.map(_square, range(3), task="mint")
        assert excinfo.value.shard == 1
        assert str(CRASH_EXIT_CODE) in str(excinfo.value)
        assert any(kind == "worker_crash" for kind, *_ in faults.fired)

    def test_thread_backend_contains_crash(self):
        faults = FaultPlan(seed=0)
        faults.inject_worker_crash(0)
        with WorkerPool(workers=2, backend="thread", faults=faults) as pool:
            with pytest.raises(ParallelError, match="shard 0"):
                pool.map(_square, range(4))

    def test_process_backend_dead_worker_never_hangs(self):
        faults = FaultPlan(seed=0)
        faults.inject_worker_crash(1)
        with WorkerPool(workers=2, backend="process", timeout_s=60,
                        faults=faults) as pool:
            with pytest.raises(ParallelError, match="shard 1") as excinfo:
                pool.map(_square, range(4), task="mint")
        assert "died" in str(excinfo.value)

    def test_crash_flag_is_consumed_once(self):
        faults = FaultPlan(seed=0)
        faults.inject_worker_crash(0)
        with WorkerPool(workers=1, backend="serial", faults=faults) as pool:
            with pytest.raises(ParallelError):
                pool.map(_square, [1])
            # The flag fired; the next map succeeds.
            assert pool.map(_square, [2]) == [4]

    def test_negative_shard_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(seed=0).inject_worker_crash(-1)


class _SteppingClock:
    """Monotonic fake: returns the scripted readings, then holds the last."""

    def __init__(self, *readings):
        self._readings = list(readings)

    def __call__(self):
        if len(self._readings) > 1:
            return self._readings.pop(0)
        return self._readings[0]


class TestTimeouts:
    def test_per_call_override_beats_pool_default(self):
        with WorkerPool(workers=2, backend="thread", timeout_s=300.0) as pool:
            with pytest.raises(ParallelError, match="no result within 0.2s"):
                pool.map(_sleep_forever, [0], timeout_s=0.2)

    def test_timeout_error_is_typed(self):
        with WorkerPool(workers=2, backend="thread", timeout_s=300.0) as pool:
            with pytest.raises(ParallelError) as excinfo:
                pool.map(_sleep_forever, [0], task="trial", timeout_s=0.2)
        assert excinfo.value.kind == "timeout"
        assert excinfo.value.task == "trial"

    def test_deadline_runs_from_dispatch_fake_clock(self):
        # Submit reads the clock at 0.0 (deadline 10.0); the wait reads it
        # at 1000.0, so the remaining budget is already negative and the
        # pool must raise without ever sleeping the 30s payload out.
        clock = _SteppingClock(0.0, 1000.0)
        start = time.perf_counter()
        with WorkerPool(workers=2, backend="thread", timeout_s=10.0,
                        clock=clock) as pool:
            with pytest.raises(ParallelError, match="no result within"):
                pool.map(_sleep_forever, [0])
        assert time.perf_counter() - start < 5.0

    def test_invalid_per_call_timeout_rejected(self):
        with WorkerPool(workers=1, backend="serial") as pool:
            with pytest.raises(ConfigError, match="timeout_s"):
                pool.map(_square, [1], timeout_s=0)

    def test_error_kinds_by_failure_mode(self):
        with WorkerPool(workers=1, backend="serial") as pool:
            with pytest.raises(ParallelError) as excinfo:
                pool.map(_boom, [0])
        assert excinfo.value.kind == "error"
        faults = FaultPlan(seed=0)
        faults.inject_worker_crash(0)
        with WorkerPool(workers=1, backend="serial", faults=faults) as pool:
            with pytest.raises(ParallelError) as excinfo:
                pool.map(_square, [0])
        assert excinfo.value.kind == "crash"

    def test_parallel_error_pickle_keeps_identity(self):
        import pickle

        error = ParallelError("shard 2 of task 'trial': no result within 5s",
                              shard=2, task="trial", kind="timeout")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard == 2
        assert clone.task == "trial"
        assert clone.kind == "timeout"
        assert str(clone) == str(error)


class TestPoolTelemetry:
    def test_shards_counted_and_traced(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with WorkerPool(workers=2, backend="thread", tracer=tracer,
                        registry=registry) as pool:
            pool.map(_square, range(5), task="job")
        assert tracer.count("parallel_shard") == 5
        assert registry.counter(
            "parallel_tasks_total", labels={"task": "job"}).value == 5

    def test_failure_counted_without_hook(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=1, backend="serial",
                        registry=registry) as pool:
            with pytest.raises(ParallelError):
                pool.map(_boom, [0], task="job")
        assert registry.counter(
            "parallel_worker_failures_total", labels={"task": "job"}
        ).value == 1

    def test_failure_counted_once_with_hook(self):
        registry = MetricsRegistry()
        hook = RunLoggerHook(logger=None, registry=registry)
        with WorkerPool(workers=1, backend="serial", hook=hook,
                        registry=registry) as pool:
            with pytest.raises(ParallelError):
                pool.map(_boom, [0], task="job")
        assert registry.counter(
            "parallel_worker_failures_total", labels={"task": "job"}
        ).value == 1


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"backend": "gpu"},
        {"timeout_s": 0},
    ])
    def test_bad_pool_arguments(self, kwargs):
        with pytest.raises(ConfigError):
            WorkerPool(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"backend": "gpu"},
        {"chunk_size": 0},
        {"timeout_s": -1.0},
        {"kernel_cache_entries": 0},
    ])
    def test_bad_parallel_config(self, kwargs):
        with pytest.raises(ConfigError):
            ParallelConfig(**kwargs)

    def test_reexported_from_package_root(self):
        import repro

        assert repro.WorkerPool is WorkerPool
        assert repro.ParallelConfig is ParallelConfig
        assert repro.ParallelError is ParallelError


class TestTracePropagation:
    """Cross-process traces: worker spans merge under their shard span."""

    def _run(self, backend, workers=4):
        tracer = Tracer()
        registry = MetricsRegistry()
        with WorkerPool(workers=workers, backend=backend, tracer=tracer,
                        registry=registry) as pool:
            results = pool.map(_traced_double, range(workers), task="job")
        assert results == [x * 2 for x in range(workers)]
        return tracer, registry

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_worker_spans_from_every_worker_with_correct_parents(
            self, backend):
        tracer, _ = self._run(backend)
        shards = [r for r in tracer.records if r.name == "parallel_shard"]
        inner = [r for r in tracer.records if r.name == "inner_stage"]
        assert len(shards) == 4 and len(inner) == 4
        assert {r.origin for r in inner} == {"w0", "w1", "w2", "w3"}
        shard_by_worker = {r.metadata["worker"]: r for r in shards}
        for record in inner:
            assert record.parent_id == shard_by_worker[record.origin].span_id
        assert {r.trace_id for r in tracer.records} == {tracer.trace_id}

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_span_structure_identical_across_backends(self, backend):
        baseline, _ = self._run("serial")
        tracer, _ = self._run(backend)

        def shape(t):
            return sorted(
                (r.name, r.span_id, r.parent_id, r.origin, r.depth)
                for r in t.records
            )

        assert shape(tracer) == shape(baseline)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_metrics_aggregate_to_serial_totals(self, backend):
        _, serial = self._run("serial")
        _, parallel = self._run(backend)
        assert parallel.snapshot() == serial.snapshot()
        items = parallel.counter("work_items_total")
        assert items.value == 4.0
        hist = parallel.snapshot()["item_value"]["series"][0]
        assert hist["count"] == 4

    def test_worker_spans_survive_repeated_maps_without_collisions(self):
        tracer = Tracer()
        with WorkerPool(workers=2, backend="thread", tracer=tracer) as pool:
            pool.map(_traced_double, range(2), task="a")
            pool.map(_traced_double, range(2), task="b")
        span_ids = [r.span_id for r in tracer.records]
        assert len(span_ids) == len(set(span_ids))

    def test_untraced_pool_ships_no_telemetry(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=2, backend="thread",
                        registry=registry) as pool:
            results = pool.map(_square, range(4), task="job")
        assert results == [0, 1, 4, 9]
        assert "work_items_total" not in registry
