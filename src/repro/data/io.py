"""Dataset persistence as compressed ``.npz`` archives.

Writes are atomic (temp file + fsync + ``os.replace``) so a killed process
never leaves a truncated archive, and reads fail closed: any unreadable,
truncated, or key-incomplete archive raises :class:`~repro.errors.DataError`
naming the offending path instead of leaking a raw ``KeyError``/``ValueError``.
"""

from __future__ import annotations

import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import DataError
from ..runtime.atomic import atomic_savez
from .dataset import PairedDataset

_REQUIRED_KEYS = ("masks", "resists", "centers", "array_types")


def save_dataset(dataset: PairedDataset, path: Union[str, Path]) -> Path:
    """Write a dataset to ``path`` (a ``.npz`` suffix is added if missing).

    The archive is written atomically: readers observe either the previous
    complete file or the new one, never a torn intermediate.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    atomic_savez(path, {
        "masks": dataset.masks,
        "resists": dataset.resists,
        "centers": dataset.centers,
        "array_types": dataset.array_types.astype(str),
        "tech_name": np.array(dataset.tech_name),
    })
    return path


def load_dataset(path: Union[str, Path]) -> PairedDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Raises :class:`DataError` (naming the path, and the missing keys where
    applicable) for absent files, non-dataset archives, and corrupt or
    truncated files.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            missing = [key for key in _REQUIRED_KEYS if key not in data.files]
            if missing:
                raise DataError(
                    f"{path} is not a dataset archive (missing {missing})"
                )
            tech_name = str(data["tech_name"]) if "tech_name" in data.files else ""
            return PairedDataset(
                data["masks"],
                data["resists"],
                data["centers"],
                data["array_types"],
                tech_name=tech_name,
            )
    except DataError:
        raise
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile,
            zlib.error) as exc:
        raise DataError(
            f"unreadable dataset archive {path}: {exc}"
        ) from exc
