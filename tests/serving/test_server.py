"""Continuous-batching serving-loop drills: InferenceServer and run_soak.

Determinism strategy: admission-policy tests submit against a *not yet
started* server (the batcher is not racing the assertions), then start or
close it to observe the outcome.  Liveness tests (watchdog, drain) use
generous real-time timeouts — they assert *that* things resolve with typed
answers, never exact timing.  Everything runs on the GoldenModel playback
stand-in, so un-poisoned clips always serve from the model path.
"""

import pytest

from repro.errors import DeadlineError, OverloadError
from repro.runtime.faults import FaultPlan
from repro.serving import (
    InferenceServer,
    PROVENANCE_MODEL,
    SHED_EVICTED,
    SHED_OVERLOAD,
    SHED_QUOTA,
    SHED_SHUTDOWN,
    SHED_WEDGED,
    TenantQuota,
    run_soak,
)
from repro.telemetry import (
    MetricsRegistry,
    RunLogger,
    RunLoggerHook,
    Tracer,
    read_run_log,
    validate_run_log,
)

#: liveness bound for futures that must resolve; generous, never load-bearing
RESOLVE_TIMEOUT = 30.0


class TestServeAndCoalesce:
    def test_every_submission_is_answered_with_its_request_id(
            self, golden_model, tiny_dataset, tiny_config, server_config):
        config = server_config(tiny_config, max_batch=4, max_wait_ms=1.0)
        tracer = Tracer()
        server = InferenceServer(golden_model, config, tracer=tracer)
        futures = [
            server.submit(mask) for mask in tiny_dataset.masks[:8]
        ]
        server.start()
        try:
            results = [f.result(timeout=RESOLVE_TIMEOUT) for f in futures]
        finally:
            server.close()

        assert [clip.clip for clip in results] == list(range(8))
        assert all(c.provenance == PROVENANCE_MODEL for c in results)
        # 8 requests were already queued: exactly two max_batch=4 batches
        assert server.batches == 2
        assert tracer.count("batch_coalesce") == 2
        stats = server.stats()
        assert stats.submitted == 8
        assert stats.served == 8
        assert stats.shed == 0
        assert stats.answered == 8
        assert stats.queue_depth == 0

    def test_context_manager_drains_on_exit(
            self, golden_model, tiny_dataset, tiny_config):
        with InferenceServer(golden_model, tiny_config) as server:
            futures = [
                server.submit(mask) for mask in tiny_dataset.masks[:5]
            ]
        # exit closed with a full drain: everything is served, not shed
        assert all(f.done() for f in futures)
        assert all(f.error() is None for f in futures)
        assert server.state == "closed"

    def test_latency_includes_queueing(self, golden_model, tiny_dataset,
                                       tiny_config):
        with InferenceServer(golden_model, tiny_config) as server:
            future = server.submit(tiny_dataset.masks[0])
            future.result(timeout=RESOLVE_TIMEOUT)
        assert future.resolved_at is not None

    def test_closed_server_refuses_submit_and_restart(
            self, golden_model, tiny_dataset, tiny_config):
        server = InferenceServer(golden_model, tiny_config)
        server.start()
        server.close()
        with pytest.raises(OverloadError, match="shutting down"):
            server.submit(tiny_dataset.masks[0])
        with pytest.raises(OverloadError, match="restart"):
            server.start()


class TestAdmissionPolicy:
    def test_quota_cap_sheds_at_the_door(
            self, golden_model, tiny_dataset, tiny_config):
        server = InferenceServer(
            golden_model, tiny_config,
            quotas=(TenantQuota("capped", max_queued=1),),
        )
        first = server.submit(tiny_dataset.masks[0], tenant="capped")
        second = server.submit(tiny_dataset.masks[1], tenant="capped")
        assert not first.done()
        assert second.done()
        error = second.error()
        assert isinstance(error, OverloadError)
        assert error.reason == SHED_QUOTA
        with pytest.raises(OverloadError, match="max_queued"):
            second.result()
        server.close(drain=False)
        assert first.error().reason == SHED_SHUTDOWN

    def test_full_queue_evicts_the_over_share_tenants_newest_request(
            self, golden_model, tiny_dataset, tiny_config, server_config):
        config = server_config(tiny_config, queue_capacity=4)
        server = InferenceServer(golden_model, config)
        hog = [
            server.submit(mask, tenant="hog")
            for mask in tiny_dataset.masks[:4]
        ]
        assert server.queue.full
        small = server.submit(tiny_dataset.masks[4], tenant="small")

        # the newcomer displaced hog's newest request, not its oldest
        assert not small.done()
        assert [f.done() for f in hog] == [False, False, False, True]
        error = hog[3].error()
        assert isinstance(error, OverloadError)
        assert error.reason == SHED_EVICTED
        assert server.stats().tenants["hog"]["shed"] == 1
        server.close(drain=False)

    def test_arriving_tenant_over_its_own_share_is_shed_itself(
            self, golden_model, tiny_dataset, tiny_config, server_config):
        config = server_config(tiny_config, queue_capacity=4)
        server = InferenceServer(golden_model, config)
        kept = [
            server.submit(mask, tenant="solo")
            for mask in tiny_dataset.masks[:4]
        ]
        extra = server.submit(tiny_dataset.masks[4], tenant="solo")

        assert extra.done()
        assert extra.error().reason == SHED_OVERLOAD
        assert all(not f.done() for f in kept)
        assert server.queue.depth() == 4  # nobody was evicted
        assert server.queue.shed == 1
        server.close(drain=False)

    def test_close_without_drain_sheds_the_queue_with_shutdown(
            self, golden_model, tiny_dataset, tiny_config):
        server = InferenceServer(golden_model, tiny_config)
        futures = [
            server.submit(mask) for mask in tiny_dataset.masks[:3]
        ]
        server.close(drain=False)
        for future in futures:
            error = future.error()
            assert isinstance(error, OverloadError)
            assert error.reason == SHED_SHUTDOWN


class TestDeadlines:
    def test_expired_request_is_answered_with_a_typed_deadline_error(
            self, golden_model, tiny_dataset, tiny_config, fake_clock):
        server = InferenceServer(
            golden_model, tiny_config, clock=fake_clock,
        )
        future = server.submit(tiny_dataset.masks[0], deadline_s=5.0)
        fake_clock.advance(10.0)  # the budget expires while queued
        server.start()
        try:
            with pytest.raises(DeadlineError):
                future.result(timeout=RESOLVE_TIMEOUT)
        finally:
            server.close()
        assert future.error().reason == "deadline"

    def test_config_default_deadline_applies_to_submissions(
            self, golden_model, tiny_dataset, tiny_config, server_config,
            fake_clock):
        config = server_config(tiny_config, default_deadline_s=2.0)
        server = InferenceServer(golden_model, config, clock=fake_clock)
        doomed = server.submit(tiny_dataset.masks[0])
        unbounded = server.submit(tiny_dataset.masks[1], deadline_s=None)
        fake_clock.advance(3.0)
        server.start()
        try:
            with pytest.raises(DeadlineError):
                doomed.result(timeout=RESOLVE_TIMEOUT)
            served = unbounded.result(timeout=RESOLVE_TIMEOUT)
        finally:
            server.close()
        assert served.provenance == PROVENANCE_MODEL


class TestWatchdog:
    def test_wedged_executor_fails_pending_requests_with_typed_errors(
            self, golden_model, tiny_dataset, tiny_config, server_config):
        config = server_config(tiny_config, watchdog_s=0.3, max_batch=2)
        faults = FaultPlan(seed=0)
        faults.inject_wedge(0, seconds=60.0)
        server = InferenceServer(golden_model, config, faults=faults)
        futures = [
            server.submit(mask) for mask in tiny_dataset.masks[:5]
        ]
        server.start()
        try:
            for future in futures:
                assert future.wait(RESOLVE_TIMEOUT), "request left unanswered"
            for future in futures:
                error = future.error()
                assert isinstance(error, OverloadError)
                assert error.reason == SHED_WEDGED
            assert server.wedged
            with pytest.raises(OverloadError, match="wedged"):
                server.submit(tiny_dataset.masks[0])
        finally:
            server.close()
        assert server.stats().wedged


class TestInjectedClock:
    """The batcher's coalescing budget and the watchdog's stall timer run
    on the injected clock, so wedge/coalescing drills advance a fake clock
    instead of sleeping real wall time."""

    def test_fake_clock_expires_the_coalescing_budget(
            self, golden_model, tiny_dataset, tiny_config, server_config,
            fake_clock):
        import time as _time

        # A 60s coalescing window: only the fake clock can close a
        # non-full batch within this test's lifetime.
        config = server_config(
            tiny_config, max_batch=8, max_wait_ms=60_000.0)
        server = InferenceServer(golden_model, config, clock=fake_clock)
        server.start()
        try:
            future = server.submit(tiny_dataset.masks[0])
            bound = _time.monotonic() + RESOLVE_TIMEOUT
            while not future.done() and _time.monotonic() < bound:
                fake_clock.advance(120.0)
                _time.sleep(0.02)
            clip = future.result(timeout=RESOLVE_TIMEOUT)
            assert clip.provenance == PROVENANCE_MODEL
        finally:
            server.close()

    def test_fake_clock_trips_the_watchdog_on_a_stuck_executor(
            self, golden_model, tiny_dataset, tiny_config, server_config,
            fake_clock):
        import threading as _threading

        class BlockingModel:
            """Holds the forward pass until released — a real stall."""

            def __init__(self, inner):
                self.inner = inner
                self.entered = _threading.Event()
                self.release = _threading.Event()

            def predict_raw(self, masks):
                self.entered.set()
                self.release.wait(RESOLVE_TIMEOUT)
                return self.inner.predict_raw(masks)

        import time as _time

        config = server_config(tiny_config, watchdog_s=300.0, max_batch=2)
        model = BlockingModel(golden_model)
        server = InferenceServer(model, config, clock=fake_clock)
        server.start()
        try:
            future = server.submit(tiny_dataset.masks[0])
            assert model.entered.wait(RESOLVE_TIMEOUT)
            # 300 real seconds must not pass; fake ones do.  Advance past
            # the stall budget repeatedly — the watchdog samples its stall
            # start from this same clock, so one jump can land before it.
            bound = _time.monotonic() + RESOLVE_TIMEOUT
            while not server.wedged and _time.monotonic() < bound:
                fake_clock.advance(301.0)
                _time.sleep(0.02)
            assert future.wait(RESOLVE_TIMEOUT), "request left unanswered"
            error = future.error()
            assert isinstance(error, OverloadError)
            assert error.reason == SHED_WEDGED
            assert server.wedged
        finally:
            model.release.set()
            server.close()


class TestTelemetry:
    def test_shed_and_queue_full_flow_into_log_and_metrics(
            self, golden_model, tiny_dataset, tiny_config, server_config,
            tmp_path):
        config = server_config(tiny_config, queue_capacity=2)
        registry = MetricsRegistry()
        log_path = tmp_path / "serve.jsonl"
        with RunLogger(log_path) as logger:
            logger.run_start(command="server-drill")
            hook = RunLoggerHook(logger=logger, registry=registry)
            server = InferenceServer(golden_model, config, hook=hook)
            futures = [
                server.submit(mask, tenant="solo")
                for mask in tiny_dataset.masks[:3]
            ]
            server.close(drain=False)
            logger.run_end(status="ok")

        assert all(f.done() for f in futures)
        events = read_run_log(log_path)
        validate_run_log(events)
        kinds = [e["event"] for e in events]
        assert kinds.count("queue_full") == 1   # the third submission
        assert kinds.count("shed") == 3          # 1 overload + 2 shutdown
        assert registry.counter("serve_queue_full_total").value == 1
        assert registry.counter(
            "serve_shed_total", labels={"tenant": "solo"}
        ).value == 3
        assert registry.gauge("serve_queue_depth").value == 0


class TestSoakHarness:
    def test_soak_answers_every_admitted_request(
            self, golden_model, tiny_dataset, tiny_config, server_config):
        config = server_config(tiny_config, max_batch=4, max_wait_ms=2.0)
        server = InferenceServer(golden_model, config)
        report = run_soak(
            server, list(tiny_dataset.masks), duration_s=0.6,
            qps_start=30.0, qps_end=60.0, tenants=("opc", "ilt"),
        )
        assert report.unanswered == 0
        assert report.answered == report.submitted
        assert report.served > 0
        assert report.refused == 0
        assert not report.wedged
        assert set(report.tenants) == {"opc", "ilt"}
        payload = report.to_dict()
        assert payload["answered"] == report.submitted
        assert "fairness_gap" in payload
        # a soak is destructive: it leaves the server closed
        assert server.state == "closed"

    def test_soak_validates_its_load_shape(self, golden_model, tiny_dataset,
                                           tiny_config):
        server = InferenceServer(golden_model, tiny_config)
        with pytest.raises(OverloadError, match="duration"):
            run_soak(server, list(tiny_dataset.masks), duration_s=0.0)
        with pytest.raises(OverloadError, match="QPS"):
            run_soak(server, list(tiny_dataset.masks), duration_s=1.0,
                     qps_start=0.0)
        with pytest.raises(OverloadError, match="mask"):
            run_soak(server, [], duration_s=1.0)
        server.close()
