"""Critical-dimension and center-error metrics."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.metrics import cd_error_nm, center_error_nm, measure_cd_nm


def contact(size=32, half=5, center=(16, 16)):
    image = np.zeros((size, size))
    r, c = center
    image[r - half : r + half, c - half : c + half] = 1.0
    return image


class TestMeasureCd:
    def test_square_contact(self):
        image = contact(half=5)
        cd_h, cd_v = measure_cd_nm(image, 2.0)
        assert cd_h == pytest.approx(20.0)
        assert cd_v == pytest.approx(20.0)

    def test_rectangular_contact(self):
        image = np.zeros((32, 32))
        image[10:20, 8:16] = 1.0  # 10 rows x 8 cols
        cd_h, cd_v = measure_cd_nm(image, 1.0)
        assert cd_h == pytest.approx(8.0)
        assert cd_v == pytest.approx(10.0)

    def test_ignores_disjoint_blobs_on_cutline(self):
        image = contact(half=4)
        image[16, 28:31] = 1.0  # separate blob on the same row
        cd_h, _ = measure_cd_nm(image, 1.0)
        assert cd_h == pytest.approx(8.0)

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            measure_cd_nm(np.zeros((8, 8)), 1.0)


class TestCdError:
    def test_zero_for_identical(self):
        image = contact()
        assert cd_error_nm(image, image.copy(), 1.0) == 0.0

    def test_dilation_error(self):
        golden = contact(half=5)
        predicted = contact(half=6)
        assert cd_error_nm(golden, predicted, 1.0) == pytest.approx(2.0)

    def test_empty_prediction_costs_full_cd(self):
        golden = contact(half=5)
        assert cd_error_nm(golden, np.zeros_like(golden), 1.0) == pytest.approx(
            10.0
        )


class TestCenterError:
    def test_zero_for_identical(self):
        assert center_error_nm([3.0, 4.0], [3.0, 4.0], 1.0) == 0.0

    def test_euclidean(self):
        assert center_error_nm([0.0, 0.0], [3.0, 4.0], 1.0) == pytest.approx(5.0)

    def test_nm_scaling(self):
        assert center_error_nm([0.0, 0.0], [3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_batched_mean(self):
        golden = np.array([[0.0, 0.0], [1.0, 1.0]])
        predicted = np.array([[3.0, 4.0], [1.0, 1.0]])
        assert center_error_nm(golden, predicted, 1.0) == pytest.approx(2.5)

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            center_error_nm([0.0, 0.0, 0.0], [1.0, 1.0], 1.0)
