"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..functional import sigmoid, sigmoid_grad
from .base import Layer


def _numel(shape: tuple) -> int:
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


class ReLU(Layer):
    op_name = "ReLU"

    def __init__(self):
        self._mask = None

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def flops(self, input_shape: tuple, output_shape: tuple) -> int:
        return _numel(output_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "mask")
        return grad * mask


class LeakyReLU(Layer):
    op_name = "LReLU"

    def __init__(self, slope: float = 0.2):
        if not 0 <= slope < 1:
            raise ShapeError(f"leaky slope must lie in [0, 1), got {slope}")
        self.slope = slope
        self._mask = None

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def flops(self, input_shape: tuple, output_shape: tuple) -> int:
        return 2 * _numel(output_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x).astype(np.float32, copy=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "mask")
        return np.where(mask, grad, self.slope * grad)


class Sigmoid(Layer):
    op_name = "Sigmoid"

    def __init__(self):
        self._out = None

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def flops(self, input_shape: tuple, output_shape: tuple) -> int:
        return 4 * _numel(output_shape)  # exp, add, div, negate

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = sigmoid(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._out, "output")
        return grad * sigmoid_grad(out)


class Tanh(Layer):
    op_name = "Tanh"

    def __init__(self):
        self._out = None

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def flops(self, input_shape: tuple, output_shape: tuple) -> int:
        return 4 * _numel(output_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._out, "output")
        return grad * (1.0 - out**2)
