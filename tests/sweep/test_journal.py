"""Journal durability and replay: torn lines, last-record-wins, conflicts."""

import json

import pytest

from repro.errors import SweepError
from repro.sweep import (
    SweepJournal,
    read_journal,
    replay_journal,
)


def _journal(tmp_path):
    return SweepJournal(tmp_path / "journal.jsonl")


class TestAppend:
    def test_records_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        journal.sweep_start(digest="s" * 64, trials=2, spec={"grid": {}})
        journal.trial_start(digest="d1", trial="trial-000", index=0,
                            attempt=1)
        journal.trial_end(digest="d1", trial="trial-000", status="completed",
                          attempts=1, metrics={"ede_mean_nm": 1.5},
                          weights="/w")
        records = read_journal(journal.path)
        assert [r["kind"] for r in records] == [
            "sweep_start", "trial_start", "trial_end"]
        assert records[0]["spec"] == {"grid": {}}
        assert records[2]["metrics"] == {"ede_mean_nm": 1.5}
        assert all("schema" in r for r in records)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SweepError, match="unknown journal record kind"):
            _journal(tmp_path).append("trial_midpoint")

    def test_append_creates_parent_directories(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "sw" / "journal.jsonl")
        journal.trial_start(digest="d", trial="t", index=0, attempt=1)
        assert journal.path.exists()


class TestRead:
    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = _journal(tmp_path)
        journal.trial_start(digest="d1", trial="t", index=0, attempt=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "trial_end", "digest": "d1", "sta')
        records = read_journal(journal.path)
        assert [r["kind"] for r in records] == ["trial_start"]

    def test_mid_file_corruption_fails_closed(self, tmp_path):
        journal = _journal(tmp_path)
        journal.trial_start(digest="d1", trial="t", index=0, attempt=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("garbage not json\n")
        journal.trial_end(digest="d1", trial="t", status="completed",
                          attempts=1)
        with pytest.raises(SweepError, match="undecodable line 2"):
            read_journal(journal.path)

    def test_non_record_json_fails_closed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps([1, 2, 3]) + "\n")
        with pytest.raises(SweepError, match="not a journal record"):
            read_journal(path)

    def test_missing_file_is_a_sweep_error(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read"):
            read_journal(tmp_path / "absent.jsonl")


class TestReplay:
    def test_last_record_wins_per_digest(self, tmp_path):
        journal = _journal(tmp_path)
        journal.sweep_start(digest="s", trials=1, spec={})
        journal.trial_start(digest="d1", trial="t", index=0, attempt=1)
        journal.trial_end(digest="d1", trial="t", status="interrupted",
                          attempts=1, reason="interrupted")
        # a later run completes the same trial
        journal.trial_start(digest="d1", trial="t", index=0, attempt=1)
        journal.trial_end(digest="d1", trial="t", status="completed",
                          attempts=1, metrics={"m": 1.0})
        state = replay_journal(read_journal(journal.path))
        assert set(state.completed()) == {"d1"}
        assert state.status_of("d1") == "completed"
        assert state.attempts["d1"] == 2  # attempts accumulate across runs

    def test_transitional_statuses(self, tmp_path):
        journal = _journal(tmp_path)
        journal.trial_start(digest="d1", trial="t", index=0, attempt=1)
        state = replay_journal(read_journal(journal.path))
        assert state.status_of("d1") == "running"
        journal.trial_retry(digest="d1", trial="t", attempt=1,
                            reason="diverged", delay_s=0.1)
        state = replay_journal(read_journal(journal.path))
        assert state.status_of("d1") == "retrying"
        assert state.retries["d1"] == 1
        assert state.status_of("unseen") == "pending"

    def test_failed_and_interrupted_are_not_completed(self, tmp_path):
        journal = _journal(tmp_path)
        journal.trial_end(digest="d1", trial="a", status="failed",
                          attempts=2, reason="diverged")
        journal.trial_end(digest="d2", trial="b", status="interrupted",
                          attempts=1, reason="interrupted")
        state = replay_journal(read_journal(journal.path))
        assert state.completed() == {}
        assert state.status_of("d1") == "failed"
        assert state.status_of("d2") == "interrupted"

    def test_conflicting_sweep_starts_rejected(self, tmp_path):
        journal = _journal(tmp_path)
        journal.sweep_start(digest="aaa", trials=1, spec={})
        journal.sweep_start(digest="bbb", trials=1, spec={})
        with pytest.raises(SweepError, match="conflicting sweep_start"):
            replay_journal(read_journal(journal.path))

    def test_repeated_identical_sweep_start_tolerated(self, tmp_path):
        journal = _journal(tmp_path)
        journal.sweep_start(digest="aaa", trials=1, spec={})
        journal.sweep_start(digest="aaa", trials=1, spec={})
        state = replay_journal(read_journal(journal.path))
        assert state.sweep["digest"] == "aaa"

    def test_record_without_digest_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "trial_start"}\n')
        with pytest.raises(SweepError, match="carries no digest"):
            replay_journal(read_journal(path))
