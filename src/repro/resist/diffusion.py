"""Post-exposure-bake acid diffusion.

Chemically amplified resists blur the latent image: during the post-exposure
bake, photo-generated acid diffuses before deprotection.  The standard
compact treatment convolves the aerial image with an isotropic Gaussian whose
sigma is the acid diffusion length.  The convolution is done in the Fourier
domain with periodic boundaries, consistent with the periodic imaging model.
"""

from __future__ import annotations

import numpy as np

from ..errors import ResistError


def diffuse_aerial_image(aerial: np.ndarray, diffusion_length_nm: float,
                         nm_per_px: float) -> np.ndarray:
    """Convolve an aerial image with the acid-diffusion Gaussian.

    A ``diffusion_length_nm`` of zero returns the image unchanged (copied).
    """
    if aerial.ndim != 2 or aerial.shape[0] != aerial.shape[1]:
        raise ResistError(f"expected a square image, got shape {aerial.shape}")
    if diffusion_length_nm < 0:
        raise ResistError(
            f"diffusion length must be >= 0, got {diffusion_length_nm}"
        )
    if nm_per_px <= 0:
        raise ResistError(f"nm_per_px must be positive, got {nm_per_px}")
    if diffusion_length_nm == 0:
        return aerial.copy()

    sigma_px = diffusion_length_nm / nm_per_px
    n = aerial.shape[0]
    freqs = np.fft.fftfreq(n)  # cycles per pixel
    fx, fy = np.meshgrid(freqs, freqs)
    # Fourier transform of a unit-integral Gaussian with std sigma_px.
    kernel = np.exp(-2.0 * (np.pi * sigma_px) ** 2 * (fx**2 + fy**2))
    blurred = np.fft.ifft2(np.fft.fft2(aerial) * kernel).real
    # Diffusion cannot create negative intensity; clamp fp undershoot.
    return np.clip(blurred, 0.0, None)
