"""Configuration objects: validation, presets, derived quantities."""

import dataclasses

import pytest

from repro.config import (
    DATA_POLICIES,
    DataIntegrityConfig,
    ExperimentConfig,
    ImageConfig,
    ModelConfig,
    OpticalConfig,
    RegistryConfig,
    ResistConfig,
    TechnologyConfig,
    TelemetryConfig,
    TrainingConfig,
    N10,
    N7,
    paper_n10,
    paper_n7,
    reduced,
    tiny,
)
from repro.errors import ConfigError


class TestOpticalConfig:
    def test_defaults_valid(self):
        OpticalConfig()

    def test_rejects_negative_wavelength(self):
        with pytest.raises(ConfigError):
            OpticalConfig(wavelength_nm=-1.0)

    def test_rejects_inverted_annulus(self):
        with pytest.raises(ConfigError):
            OpticalConfig(sigma_inner=0.9, sigma_outer=0.6)

    def test_rejects_sigma_outer_above_one(self):
        with pytest.raises(ConfigError):
            OpticalConfig(sigma_outer=1.5)

    def test_rejects_zero_kernels(self):
        with pytest.raises(ConfigError):
            OpticalConfig(num_kernels=0)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigError):
            OpticalConfig(grid_size=4)


class TestResistConfig:
    def test_defaults_valid(self):
        ResistConfig()

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_threshold(self, threshold):
        with pytest.raises(ConfigError):
            ResistConfig(base_threshold=threshold)

    def test_rejects_negative_diffusion(self):
        with pytest.raises(ConfigError):
            ResistConfig(diffusion_length_nm=-1.0)


class TestTechnologyConfig:
    def test_n10_n7_shapes(self):
        assert N10.num_clips == 982
        assert N7.num_clips == 979
        assert N10.contact_size_nm == N7.contact_size_nm == 60.0
        assert N7.pitch_nm < N10.pitch_nm

    def test_half_pitch(self):
        assert N10.half_pitch_nm == pytest.approx(N10.pitch_nm / 2)

    def test_rejects_pitch_below_contact(self):
        with pytest.raises(ConfigError):
            TechnologyConfig(
                name="bad", contact_size_nm=60, pitch_nm=50, num_clips=10
            )

    def test_rejects_crop_larger_than_clip(self):
        with pytest.raises(ConfigError):
            TechnologyConfig(
                name="bad", contact_size_nm=60, pitch_nm=120, num_clips=10,
                clip_size_nm=1000, cropped_clip_nm=2000,
            )

    def test_rejects_window_smaller_than_contact(self):
        with pytest.raises(ConfigError):
            TechnologyConfig(
                name="bad", contact_size_nm=60, pitch_nm=120, num_clips=10,
                resist_window_nm=50,
            )

    def test_rejects_negative_registration(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(N10, registration_sigma_nm=-1.0)


class TestImageConfig:
    def test_nm_per_px_matches_paper(self):
        """Paper: 128 nm window at 256 px => ~0.5 nm/px (Section 3.1)."""
        image = ImageConfig()
        assert image.resist_nm_per_px(N10) == pytest.approx(0.5)
        assert image.mask_nm_per_px(N10) == pytest.approx(1000 / 256)

    @pytest.mark.parametrize("px", [7, 12, 100])
    def test_rejects_non_power_of_two(self, px):
        with pytest.raises(ConfigError):
            ImageConfig(mask_image_px=px)


class TestModelConfig:
    def test_paper_encoder_widths(self):
        """Table 1 encoder: 64,128,256,512,512,512,512,512."""
        model = ModelConfig()
        assert model.encoder_widths() == (64, 128, 256, 512, 512, 512, 512, 512)

    def test_paper_decoder_widths(self):
        """Table 1 decoder (before the output layer): 512x4, 256, 128, 64."""
        model = ModelConfig()
        assert model.decoder_widths() == (512, 512, 512, 512, 256, 128, 64)

    def test_num_downsamples(self):
        assert ModelConfig().num_downsamples == 8
        assert ModelConfig(image_size=64, base_filters=16).num_downsamples == 6

    def test_rejects_bad_image_size(self):
        with pytest.raises(ConfigError):
            ModelConfig(image_size=100)


class TestTrainingConfig:
    def test_paper_hyperparameters(self):
        """Section 4: batch 4, 80 epochs, lambda 100, Adam(2e-4, 0.5, 0.999)."""
        training = TrainingConfig()
        assert training.batch_size == 4
        assert training.epochs == 80
        assert training.lambda_l1 == 100.0
        assert training.learning_rate == pytest.approx(2e-4)
        assert (training.adam_beta1, training.adam_beta2) == (0.5, 0.999)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            TrainingConfig(train_fraction=1.5)

    def test_rejects_zero_epochs(self):
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0)


class TestTelemetryConfig:
    def test_defaults_valid(self):
        config = TelemetryConfig()
        assert config.enabled
        assert config.log_path is None and config.metrics_path is None
        assert config.latency_buckets_s[0] > 0

    def test_rejects_empty_buckets(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(latency_buckets_s=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(latency_buckets_s=(0.1, 0.1, 1.0))

    def test_rejects_non_positive_buckets(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(latency_buckets_s=(0.0, 1.0))

    def test_experiment_config_carries_telemetry(self):
        config = reduced()
        assert isinstance(config.telemetry, TelemetryConfig)
        custom = config.replace(telemetry=TelemetryConfig(enabled=False))
        assert not custom.telemetry.enabled


class TestDataIntegrityConfig:
    def test_defaults_valid(self):
        config = DataIntegrityConfig()
        assert config.write_manifest
        assert config.policy == "none"
        assert config.policy in DATA_POLICIES

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            DataIntegrityConfig(policy="pray")

    def test_rejects_non_positive_tolerance(self):
        with pytest.raises(ConfigError):
            DataIntegrityConfig(center_tolerance_px=0.0)

    def test_rejects_empty_salvage_floor(self):
        with pytest.raises(ConfigError):
            DataIntegrityConfig(min_salvaged_records=0)

    def test_experiment_config_carries_data_integrity(self):
        config = reduced()
        assert isinstance(config.data, DataIntegrityConfig)
        custom = config.replace(data=DataIntegrityConfig(policy="strict"))
        assert custom.data.policy == "strict"


class TestRegistryConfig:
    def test_defaults_valid(self):
        config = RegistryConfig()
        assert config.root is None
        assert 0.0 < config.canary_fraction <= 1.0
        assert 1 <= config.min_samples <= config.window

    def test_rejects_bad_canary_fraction(self):
        with pytest.raises(ConfigError):
            RegistryConfig(canary_fraction=0.0)
        with pytest.raises(ConfigError):
            RegistryConfig(canary_fraction=1.5)

    def test_rejects_bad_window_shape(self):
        with pytest.raises(ConfigError):
            RegistryConfig(window=0)
        with pytest.raises(ConfigError):
            RegistryConfig(window=8, min_samples=9)
        with pytest.raises(ConfigError):
            RegistryConfig(min_samples=0)

    def test_rejects_bad_rollback_margin(self):
        with pytest.raises(ConfigError):
            RegistryConfig(rollback_margin=1.0)
        with pytest.raises(ConfigError):
            RegistryConfig(rollback_margin=-0.1)

    def test_experiment_config_carries_registry(self):
        config = reduced()
        assert isinstance(config.registry, RegistryConfig)
        custom = config.replace(
            registry=RegistryConfig(root="models/", canary_fraction=0.25))
        assert custom.registry.root == "models/"


class TestPresets:
    def test_paper_presets_construct(self):
        for config in (paper_n10(), paper_n7()):
            assert config.model.image_size == 256
            assert config.model.base_filters == 64
            assert config.training.epochs == 80

    def test_paper_clip_counts(self):
        assert paper_n10().tech.num_clips == 982
        assert paper_n7().tech.num_clips == 979

    def test_reduced_is_consistent(self):
        config = reduced()
        assert config.model.image_size == config.image.mask_image_px

    def test_tiny_is_fast(self):
        config = tiny()
        assert config.model.image_size <= 32
        assert config.tech.num_clips <= 16

    def test_snapshot_epochs_respect_total(self):
        config = reduced(epochs=10)
        assert all(e <= 10 for e in config.training.snapshot_epochs)

    def test_mismatched_model_and_image_rejected(self):
        config = reduced()
        with pytest.raises(ConfigError):
            config.replace(model=ModelConfig(image_size=128, base_filters=8))

    def test_replace_returns_new_config(self):
        config = reduced()
        other = config.replace(tech=N7)
        assert other.tech.name == "N7"
        assert config.tech.name == "N10"
        assert isinstance(other, ExperimentConfig)
