"""Overload protection: deadlines, bounded queueing, and a circuit breaker.

Three independent mechanisms keep a serving node answering under stress:

* :class:`Deadline` — a per-batch wall-clock budget.  Once exceeded, the
  service stops spending time on retries and fallback simulation and serves
  best-effort model outputs instead; every admitted clip is still answered.
* :class:`BoundedWorkQueue` — a FIFO of pending clips with a hard capacity.
  ``push`` raises :class:`~repro.errors.OverloadError` when full, which the
  admission layer converts into per-clip ``overload`` rejections
  (backpressure to the caller rather than unbounded memory growth).  The
  queue tracks its :meth:`depth` and :attr:`high_water` mark and reports
  every full-queue shed through an ``on_full`` callback, so overload is
  visible in metrics, not just in per-clip reports.
* :class:`CircuitBreaker` — after ``threshold`` *consecutive* clip-level
  guard failures, the breaker opens and the service goes simulator-only
  (the model is not even invoked).  After ``probe_after`` further clips it
  half-opens: one probe clip runs through the model, and its guard verdict
  decides between closing (healthy again) and re-opening.  Transitions are
  deterministic in the clip stream, so drills can assert them exactly.

Both time-aware primitives (:class:`Deadline`, and the transition
timestamps of :class:`CircuitBreaker`) take an injectable monotonic
``clock`` (default :func:`time.perf_counter`), so overload tests drive a
fake clock forward instead of sleeping — expiry and probe-race scenarios
become deterministic and instantaneous.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, List, Optional, Tuple

from ..errors import OverloadError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: the default monotonic clock for every time-aware overload primitive
MONOTONIC_CLOCK = time.perf_counter


class Deadline:
    """A wall-clock budget started at construction; ``None`` never expires.

    ``clock`` is any zero-argument callable returning monotonic seconds
    (default :func:`time.perf_counter`); tests inject a fake clock and step
    it explicitly instead of sleeping.
    """

    def __init__(self, seconds: Optional[float],
                 clock: Optional[Callable[[], float]] = None):
        self.seconds = seconds
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._start = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def exceeded(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed())


class BoundedWorkQueue:
    """FIFO work queue that sheds load instead of growing without bound.

    ``on_full(depth, capacity)`` fires on every full-queue shed, *before*
    the :class:`~repro.errors.OverloadError` is raised — the serving loop
    wires it to the ``queue_full`` telemetry event and the
    ``serve_queue_full_total`` counter, so shed load shows up in metrics
    rather than only in per-clip rejection reports.  :attr:`high_water`
    remembers the deepest the queue has ever been.
    """

    def __init__(self, capacity: int,
                 on_full: Optional[Callable[[int, int], None]] = None):
        if capacity < 1:
            raise OverloadError(
                f"queue capacity must be >= 1, got {capacity}",
                reason="capacity",
            )
        self.capacity = capacity
        self._items = deque()
        self._high_water = 0
        self._shed = 0
        self._on_full = on_full

    def __len__(self) -> int:
        return len(self._items)

    def depth(self) -> int:
        """Current number of queued items."""
        return len(self._items)

    @property
    def high_water(self) -> int:
        """The deepest the queue has ever been."""
        return self._high_water

    @property
    def shed(self) -> int:
        """How many pushes were refused because the queue was full."""
        return self._shed

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        if self.full:
            self._shed += 1
            if self._on_full is not None:
                self._on_full(len(self._items), self.capacity)
            raise OverloadError(
                f"work queue full ({self.capacity} clips)",
                reason="overload",
            )
        self._items.append(item)
        if len(self._items) > self._high_water:
            self._high_water = len(self._items)

    def pop_many(self, count: int) -> List:
        """Dequeue up to ``count`` items in FIFO order."""
        out = []
        while self._items and len(out) < count:
            out.append(self._items.popleft())
        return out

    def snapshot(self) -> Tuple:
        """The queued items, oldest first, without dequeuing anything."""
        return tuple(self._items)

    def remove(self, item) -> bool:
        """Remove one queued item (identity match); False if absent.

        The serving loop's fair-shedding policy evicts a specific queued
        request to make room for a tenant below its fair share.
        """
        try:
            self._items.remove(item)
        except ValueError:
            return False
        return True


class CircuitBreaker:
    """Consecutive-failure breaker with a clip-count probe schedule.

    State machine: ``closed`` → (``threshold`` consecutive failures) →
    ``open`` → (``probe_after`` clips served without the model) →
    ``half_open`` → one model probe → ``closed`` on success, ``open`` on
    failure.  ``on_transition(from_state, to_state, reason)`` fires on every
    edge; ``transitions`` keeps the full history for assertions, and
    ``transition_times`` the matching monotonic timestamps (from the
    injectable ``clock``), so drills can correlate breaker edges with
    deadline expiry without real sleeps.
    """

    def __init__(self, threshold: int, probe_after: int,
                 on_transition: Optional[Callable[[str, str, str], None]] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.threshold = threshold
        self.probe_after = probe_after
        self.state = BREAKER_CLOSED
        self.transitions: List[Tuple[str, str, str]] = []
        self.transition_times: List[float] = []
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._on_transition = on_transition
        self._consecutive_failures = 0
        self._clips_since_open = 0

    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self.state
        self.state = to_state
        self.transitions.append((from_state, to_state, reason))
        self.transition_times.append(self._clock())
        if self._on_transition is not None:
            self._on_transition(from_state, to_state, reason)

    @property
    def trips(self) -> int:
        """How many times the breaker has opened."""
        return sum(1 for _, to, _ in self.transitions if to == BREAKER_OPEN)

    @property
    def last_transition_at(self) -> Optional[float]:
        """Monotonic timestamp of the most recent edge, or None."""
        return self.transition_times[-1] if self.transition_times else None

    def allow_model(self) -> bool:
        """Decide, for the next clip, whether the model may run.

        In the open state this also advances the probe schedule: after
        ``probe_after`` denied clips the breaker half-opens and the next
        clip becomes the probe.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN:
            return True
        self._clips_since_open += 1
        if self._clips_since_open >= self.probe_after:
            self._transition(
                BREAKER_HALF_OPEN,
                f"probe after {self._clips_since_open} simulator-only clips",
            )
            return True
        return False

    def record_success(self) -> None:
        """A model-served clip passed the output guard."""
        self._consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_CLOSED, "probe clip passed the guard")

    def record_failure(self) -> None:
        """A model-served clip ended degenerate (retries exhausted)."""
        if self.state == BREAKER_HALF_OPEN:
            self._clips_since_open = 0
            self._transition(BREAKER_OPEN, "probe clip failed the guard")
            return
        self._consecutive_failures += 1
        if (self.state == BREAKER_CLOSED
                and self._consecutive_failures >= self.threshold):
            self._clips_since_open = 0
            self._transition(
                BREAKER_OPEN,
                f"{self._consecutive_failures} consecutive guard failures",
            )
