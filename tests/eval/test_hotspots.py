"""Hotspot screening."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.hotspots import (
    HotspotCriteria,
    ScreeningReport,
    is_hotspot,
    screen,
    screening_report,
)

NM_PER_PX = 2.0
SIZE = 64


def window_with_contact(cd_px=30, offset=(0, 0)):
    image = np.zeros((SIZE, SIZE))
    mid = SIZE // 2
    half = cd_px // 2
    r0 = mid - half + offset[0]
    c0 = mid - half + offset[1]
    image[r0 : r0 + cd_px, c0 : c0 + cd_px] = 1.0
    return image


@pytest.fixture
def criteria():
    return HotspotCriteria(drawn_cd_nm=60.0)


class TestIsHotspot:
    def test_nominal_contact_passes(self, criteria):
        # 30 px * 2 nm = 60 nm CD, centered: a clean print.
        assert not is_hotspot(window_with_contact(30), criteria, NM_PER_PX)

    def test_empty_window_is_hotspot(self, criteria):
        assert is_hotspot(np.zeros((SIZE, SIZE)), criteria, NM_PER_PX)

    def test_necked_contact_is_hotspot(self, criteria):
        # 10 px = 20 nm: a third of the drawn CD.
        assert is_hotspot(window_with_contact(10), criteria, NM_PER_PX)

    def test_bloated_contact_is_hotspot(self, criteria):
        assert is_hotspot(window_with_contact(56), criteria, NM_PER_PX)

    def test_displaced_contact_is_hotspot(self, criteria):
        # 10 px = 20 nm offset > 12 nm limit.
        assert is_hotspot(
            window_with_contact(30, offset=(10, 0)), criteria, NM_PER_PX
        )

    def test_small_displacement_tolerated(self, criteria):
        assert not is_hotspot(
            window_with_contact(30, offset=(2, 0)), criteria, NM_PER_PX
        )

    def test_criteria_validation(self):
        with pytest.raises(EvaluationError):
            HotspotCriteria(drawn_cd_nm=0.0)
        with pytest.raises(EvaluationError):
            HotspotCriteria(drawn_cd_nm=60.0, cd_tolerance=2.0)
        with pytest.raises(EvaluationError):
            HotspotCriteria(drawn_cd_nm=60.0, area_ratio_band=(2.0, 1.0))


class TestScreen:
    def test_labels_stack(self, criteria):
        windows = np.stack(
            [window_with_contact(30), window_with_contact(10)]
        )
        labels = screen(windows, criteria, NM_PER_PX)
        assert labels.tolist() == [False, True]

    def test_shape_validation(self, criteria):
        with pytest.raises(EvaluationError):
            screen(np.zeros((4, 4)), criteria, NM_PER_PX)


class TestScreeningReport:
    def test_perfect_screen(self, criteria):
        golden = np.stack([window_with_contact(30), window_with_contact(10)])
        report = screening_report(golden, golden.copy(), criteria, NM_PER_PX)
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.accuracy == 1.0
        assert report.total == 2

    def test_missed_hotspot_counts_false_negative(self, criteria):
        golden = np.stack([window_with_contact(10)])      # hotspot
        predicted = np.stack([window_with_contact(30)])   # model says clean
        report = screening_report(golden, predicted, criteria, NM_PER_PX)
        assert report.false_negatives == 1
        assert report.recall == 0.0

    def test_false_alarm_counts_false_positive(self, criteria):
        golden = np.stack([window_with_contact(30)])      # clean
        predicted = np.stack([window_with_contact(10)])   # model says hotspot
        report = screening_report(golden, predicted, criteria, NM_PER_PX)
        assert report.false_positives == 1
        assert report.precision == 0.0

    def test_no_hotspots_recall_none(self, criteria):
        golden = np.stack([window_with_contact(30)])
        report = screening_report(golden, golden.copy(), criteria, NM_PER_PX)
        assert report.recall is None
        assert report.accuracy == 1.0

    def test_shape_mismatch_rejected(self, criteria):
        with pytest.raises(EvaluationError):
            screening_report(
                np.zeros((2, 8, 8)), np.zeros((3, 8, 8)), criteria, NM_PER_PX
            )
