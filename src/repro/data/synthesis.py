"""Benchmark-dataset synthesis.

Stands in for the paper's proprietary N10/N7 datasets: clips are drawn from
the three contact-array families, pushed through the RET flow (SRAF + OPC)
and the rigorous simulation pipeline, then encoded into the Section 3.1
image pairs.  Deterministic given the config's seed.

Every record is minted from its own child generator, seeded by
``(base_seed, attempt)`` — so any single record can later be re-synthesized
bit-identically from the provenance saved in the dataset manifest, without
replaying the records before it (the repair path of
:mod:`repro.data.integrity`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import ExperimentConfig
from ..errors import DataError, ResistError
from ..layout import ArrayType, generate_clip, render_mask_rgb
from ..optics.imaging import get_imager
from ..runtime.parallel import WorkerPool, chunk_indices
from ..sim import LithographySimulator
from ..telemetry.trace import Tracer, get_active_tracer
from .dataset import PairedDataset
from .encoding import bbox_center_rc


def record_rng(base_seed: int, attempt: int) -> np.random.Generator:
    """The child generator that mints synthesis attempt ``attempt``.

    Seeded from ``(base_seed, attempt)`` through a ``SeedSequence``, so each
    attempt's randomness is independent of every other attempt's and
    recoverable from two integers of provenance.
    """
    entropy = (int(base_seed) % (2 ** 63), int(attempt))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def attempt_array_type(attempt: int) -> ArrayType:
    """The contact-array family scheduled for synthesis attempt ``attempt``."""
    types = list(ArrayType)
    return types[int(attempt) % len(types)]


def synthesize_record(config: ExperimentConfig,
                      simulator: LithographySimulator,
                      base_seed: int, attempt: int,
                      model_based_opc: bool = False
                      ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                          Tuple[float, float], str]]:
    """Mint the ``(mask, resist, center, array_type)`` of one attempt.

    Returns ``None`` when the target contact fails to print for this
    attempt's random neighborhood (the same attempts fail on every replay,
    so skipped attempts are as deterministic as successful ones).
    """
    array_type = attempt_array_type(attempt)
    rng = record_rng(base_seed, attempt)
    clip = generate_clip(config.tech, rng, array_type=array_type)
    try:
        result = simulator.simulate_clip(clip, model_based_opc=model_based_opc)
    except ResistError:
        return None
    mask = render_mask_rgb(result.layout, config.image.mask_image_px)
    resist = result.golden_window.astype(np.float32)
    center = bbox_center_rc(resist)
    return mask, resist, center, array_type.value


def _synthesize_shard(payload) -> List[Tuple[int, Optional[Tuple]]]:
    """Worker entry: mint one contiguous block of synthesis attempts.

    Module-level (and payload-only) so the process backend can pickle it.
    Each worker builds its own simulator; on a forked worker the parent's
    imager cache is inherited, and on a spawned one the on-disk kernel
    cache spares the eigendecomposition.  Returns ``(attempt, record)``
    pairs in attempt order — record is ``None`` for non-printing attempts,
    exactly as the serial loop would have observed.
    """
    config, base_seed, attempts, resist_model, model_based_opc = payload
    # The pool installs a shard-local ambient tracer before calling us; wiring
    # it into the simulator ships per-stage spans (rasterize/optical/resist/
    # contour) back to the parent's merged trace instead of losing them.
    simulator = LithographySimulator(
        config, resist_model=resist_model, tracer=get_active_tracer()
    )
    return [
        (attempt, synthesize_record(
            config, simulator, base_seed, attempt,
            model_based_opc=model_based_opc,
        ))
        for attempt in attempts
    ]


def synthesize_dataset(config: ExperimentConfig,
                       rng: Optional[np.random.Generator] = None,
                       resist_model: str = "vtr",
                       model_based_opc: bool = False,
                       tracer: Optional[Tracer] = None, *,
                       workers: Optional[int] = None,
                       faults=None, hook=None,
                       registry=None) -> PairedDataset:
    """Mint a full paired dataset for one technology node.

    Clips whose target contact fails to print (possible for extreme random
    neighborhoods) are skipped and replaced, so the returned dataset always
    has ``config.tech.num_clips`` samples.  The returned dataset carries a
    :class:`~repro.data.integrity.SynthesisProvenance` (base seed plus the
    per-record attempt schedule) from which any record can be re-synthesized
    bit-identically.

    ``workers`` (default: ``config.parallel.workers``) fans the per-attempt
    work out over a :class:`~repro.runtime.parallel.WorkerPool`.  Because
    every attempt derives from its own ``record_rng(base_seed, attempt)``
    child and the dataset always takes the first ``num_clips`` successful
    attempts in attempt order, the parallel result is **bit-identical** to
    the serial one for any worker count.  ``faults``/``hook``/``registry``
    thread crash injection and telemetry into the pool.

    ``tracer`` (optional) collects the simulator's per-stage spans
    (rasterize/optical/resist/contour) across the whole mint; under a
    parallel run each shard lands a ``parallel_shard`` span and the workers'
    stage spans ship back with the shard results and are merged under it,
    so the parallel trace is one coherent tree rather than a black hole.
    """
    from .integrity import SynthesisProvenance, synthesis_digest

    if rng is None:
        base_seed = int(config.training.seed)
    else:
        # An explicit generator cannot be serialized as provenance; draw one
        # integer from it and derive everything from that instead.
        base_seed = int(rng.integers(0, 2 ** 63))

    if workers is None:
        workers = config.parallel.workers
    count = config.tech.num_clips
    image_px = config.image.mask_image_px
    masks = np.empty((count, 3, image_px, image_px), dtype=np.float32)
    resists = np.empty(
        (count, 1, config.image.resist_image_px, config.image.resist_image_px),
        dtype=np.float32,
    )
    centers = np.empty((count, 2), dtype=np.float32)
    array_types = np.empty(count, dtype=object)
    attempts_used: List[int] = []
    max_attempts = count * 4

    if workers <= 1:
        simulator = LithographySimulator(
            config, resist_model=resist_model, tracer=tracer
        )
        produced = 0
        attempts = 0
        while produced < count:
            if attempts >= max_attempts:
                raise DataError(
                    f"dataset synthesis stalled: {produced}/{count} clips "
                    f"after {attempts} attempts (resist keeps failing to "
                    "print)"
                )
            record = synthesize_record(
                config, simulator, base_seed, attempts,
                model_based_opc=model_based_opc,
            )
            attempts += 1
            if record is None:
                continue
            mask, resist, center, array_type = record
            masks[produced] = mask
            resists[produced, 0] = resist
            centers[produced] = center
            array_types[produced] = array_type
            attempts_used.append(attempts - 1)
            produced += 1
    else:
        # Pre-warm the shared imager in the parent: forked workers inherit
        # it in memory, spawned ones reload it from the verified disk cache
        # — either way the eigendecomposition happens once, not per worker.
        warm = LithographySimulator(config, resist_model=resist_model)
        get_imager(config.optical, warm.grid.extent_nm,
                   config.optical.grid_size)
        produced = 0
        next_attempt = 0
        with WorkerPool(
            workers=workers, backend=config.parallel.backend,
            chunk_size=config.parallel.chunk_size,
            timeout_s=config.parallel.timeout_s,
            tracer=tracer, hook=hook, registry=registry, faults=faults,
        ) as pool:
            while produced < count:
                if next_attempt >= max_attempts:
                    raise DataError(
                        f"dataset synthesis stalled: {produced}/{count} "
                        f"clips after {next_attempt} attempts (resist keeps "
                        "failing to print)"
                    )
                wave = range(next_attempt, min(
                    next_attempt + max(count - produced, workers),
                    max_attempts,
                ))
                payloads = [
                    (config, base_seed,
                     tuple(wave[chunk.start:chunk.stop]),
                     resist_model, model_based_opc)
                    for chunk in chunk_indices(
                        len(wave), workers, config.parallel.chunk_size)
                ]
                shards = pool.map(
                    _synthesize_shard, payloads, task="synthesize_dataset"
                )
                for attempt, record in (pair for shard in shards
                                        for pair in shard):
                    if record is None or produced >= count:
                        continue
                    mask, resist, center, array_type = record
                    masks[produced] = mask
                    resists[produced, 0] = resist
                    centers[produced] = center
                    array_types[produced] = array_type
                    attempts_used.append(attempt)
                    produced += 1
                next_attempt = wave.stop

    provenance = SynthesisProvenance(
        config_digest=synthesis_digest(config),
        base_seed=base_seed,
        attempts=tuple(attempts_used),
        resist_model=resist_model,
        model_based_opc=model_based_opc,
        tech_name=config.tech.name,
    )
    return PairedDataset(
        masks, resists, centers, array_types.astype(str),
        tech_name=config.tech.name, provenance=provenance,
    )
