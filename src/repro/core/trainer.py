"""Shared training utilities: batched inference and supervised regression.

The center CNN (LithoGAN's second path) and the baseline threshold CNN are
both plain supervised regressors; they share this loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from ..errors import TrainingError
from ..nn import Adam, Sequential, mse_loss
from ..runtime.checkpoint import (
    CheckpointManager,
    collect_rngs,
    load_checkpoint_source,
    pack_state,
    unpack_state,
)
from ..runtime.faults import FaultPlan
from ..runtime.recovery import RecoveryPolicy
from ..telemetry.hooks import TelemetryHook


@dataclass
class RegressionHistory:
    """Per-epoch mean training loss of a supervised regression."""

    loss: List[float] = field(default_factory=list)
    #: per-epoch wall-clock seconds (time-to-quality for Figure 9 plots)
    seconds: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.loss:
            raise TrainingError("no epochs recorded")
        return self.loss[-1]


def predict_in_batches(net: Sequential, inputs: np.ndarray,
                       batch_size: int = 16,
                       training: bool = False) -> np.ndarray:
    """Run ``net`` over ``inputs`` in batches and stack the outputs."""
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    outputs = [
        net.forward(inputs[start : start + batch_size], training=training)
        for start in range(0, inputs.shape[0], batch_size)
    ]
    return np.concatenate(outputs, axis=0)


def _pack_regression_state(net, optimizer, history: RegressionHistory,
                           rngs, epoch: int, phase: str):
    """Detached snapshot of a regression run's full training state."""
    return pack_state(
        epoch=epoch, phase=phase,
        nets={"net": net}, optimizers={"opt": optimizer},
        rngs=rngs,
        history={"loss": history.loss, "seconds": history.seconds},
    )


def _restore_regression_state(net, optimizer, history: RegressionHistory,
                              rngs, payload, meta, phase: str) -> int:
    """Apply a packed regression snapshot; returns its epoch."""
    epoch = unpack_state(
        payload, meta, nets={"net": net}, optimizers={"opt": optimizer},
        rngs=rngs, expect_phase=phase,
    )
    saved = meta.get("history", {})
    history.loss[:] = [float(v) for v in saved.get("loss", [])]
    history.seconds[:] = [float(v) for v in saved.get("seconds", [])]
    return epoch


def fit_regression(net: Sequential, inputs: np.ndarray, targets: np.ndarray,
                   *, epochs: int, batch_size: int,
                   rng: np.random.Generator, learning_rate: float = 1e-3,
                   optimizer: Optional[Adam] = None,
                   hook: Optional[TelemetryHook] = None,
                   phase: str = "regression",
                   checkpoints: Optional[CheckpointManager] = None,
                   checkpoint_every: int = 1,
                   resume_from: Optional[Any] = None,
                   recovery: Optional[RecoveryPolicy] = None,
                   faults: Optional[FaultPlan] = None) -> RegressionHistory:
    """Train a network on an MSE objective with Adam.

    Returns the per-epoch loss (and wall-clock) history.  Raises
    :class:`TrainingError` if the loss becomes non-finite (divergence),
    rather than silently continuing.  With ``hook`` attached,
    ``hook.on_aux_epoch_end(epoch, loss, seconds, phase=phase)`` fires after
    every epoch; without one the loop does no telemetry work at all.

    The fault-tolerance parameters mirror :meth:`CganModel.fit`:
    ``checkpoints``/``checkpoint_every`` persist atomic per-epoch snapshots,
    ``resume_from`` restarts mid-schedule bit-exactly, ``recovery`` rolls a
    diverged epoch back with learning-rate backoff, and ``faults`` injects
    NaN batches or interrupts at scheduled sites.
    """
    if inputs.shape[0] != targets.shape[0]:
        raise TrainingError(
            f"input/target count mismatch: {inputs.shape[0]} vs {targets.shape[0]}"
        )
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    if optimizer is None:
        optimizer = Adam(net.parameters(), learning_rate=learning_rate)

    history = RegressionHistory()
    count = inputs.shape[0]

    rngs = None
    if (checkpoints is not None or resume_from is not None
            or recovery is not None):
        rngs = collect_rngs(rng, net)

    start_epoch = 1
    if resume_from is not None:
        payload, meta = load_checkpoint_source(resume_from, checkpoints)
        start_epoch = _restore_regression_state(
            net, optimizer, history, rngs, payload, meta, phase
        ) + 1

    last_good = None
    if recovery is not None and start_epoch <= epochs:
        last_good = _pack_regression_state(
            net, optimizer, history, rngs, epoch=start_epoch - 1, phase=phase
        )

    epoch = start_epoch
    while epoch <= epochs:
        epoch_start = time.perf_counter()
        order = rng.permutation(count)
        epoch_losses = []
        try:
            for batch_index, start in enumerate(range(0, count, batch_size)):
                if faults is not None:
                    faults.on_batch_start(phase, epoch, batch_index)
                idx = order[start : start + batch_size]
                batch_targets = targets[idx]
                if faults is not None:
                    batch_targets = faults.poison(
                        phase, epoch, batch_index, batch_targets
                    )
                optimizer.zero_grad()
                prediction = net.forward(inputs[idx], training=True)
                value, grad = mse_loss(prediction, batch_targets)
                if not np.isfinite(value):
                    raise TrainingError(
                        f"regression training diverged (loss={value}) at "
                        f"epoch {epoch}, batch {batch_index}"
                    )
                net.backward(grad)
                optimizer.step()
                epoch_losses.append(value)
        except TrainingError as exc:
            if recovery is None:
                raise
            recovery.register_failure(exc)  # re-raises once exhausted
            restored_epoch = _restore_regression_state(
                net, optimizer, history, rngs, *last_good, phase
            )
            new_lr = recovery.apply_backoff((optimizer,))
            recovery.notify_rollback(
                hook, phase=phase, failed_epoch=epoch,
                restored_epoch=restored_epoch, learning_rate=new_lr,
                reason=str(exc),
            )
            epoch = restored_epoch + 1
            continue
        epoch_seconds = time.perf_counter() - epoch_start
        history.loss.append(float(np.mean(epoch_losses)))
        history.seconds.append(epoch_seconds)
        if hook is not None:
            hook.on_aux_epoch_end(
                epoch, history.loss[-1], epoch_seconds, phase=phase
            )
        if recovery is not None:
            recovery.record_success()
        due = checkpoints is not None and (
            epoch % checkpoint_every == 0 or epoch == epochs
        )
        if recovery is not None or due:
            packed = _pack_regression_state(
                net, optimizer, history, rngs, epoch=epoch, phase=phase
            )
            if recovery is not None:
                last_good = packed
            if due:
                path = checkpoints.save(
                    step=epoch, arrays=packed[0], meta=packed[1],
                    loss=history.loss[-1],
                )
                if hook is not None:
                    hook.on_checkpoint(
                        phase, epoch, str(path), loss=history.loss[-1]
                    )
        epoch += 1
    return history
