"""Deterministic fault injection for recovery drills.

Nothing in a fault-tolerance story is real until the faults can be produced
on demand.  A :class:`FaultPlan` schedules faults at exact
``(phase, epoch, batch)`` coordinates — or samples them from a seeded RNG —
and the training loops consult it at every batch boundary:

* **NaN injection** poisons that batch's targets with NaN, so the loss goes
  non-finite through the *genuine* arithmetic path and trips the same
  divergence detection a real blow-up would.
* **Interrupt injection** raises :class:`KeyboardInterrupt` mid-epoch,
  standing in for a SIGINT/kill at an arbitrary point; tests then resume
  from checkpoints exactly as an operator would.
* **File corruption helpers** (:meth:`FaultPlan.truncate_file`,
  :meth:`FaultPlan.corrupt_file`) damage on-disk artifacts to prove that
  loads fail closed.

Each scheduled fault fires once (unless ``repeat=True``), so a recovered
retry of the same epoch proceeds cleanly — mirroring transient real-world
failures.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from ..errors import ConfigError

PathLike = Union[str, Path]

_Site = Tuple[str, int, int]


class FaultPlan:
    """A deterministic, seed-driven schedule of training faults."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._nan: Dict[_Site, bool] = {}
        self._interrupt: Dict[_Site, bool] = {}
        #: chronological record of fired faults: (kind, phase, epoch, batch)
        self.fired: List[Tuple[str, str, int, int]] = []

    # -- scheduling ----------------------------------------------------------

    @staticmethod
    def _site(phase: str, epoch: int, batch: int) -> _Site:
        if epoch < 1:
            raise ConfigError(f"fault epoch must be >= 1, got {epoch}")
        if batch < 0:
            raise ConfigError(f"fault batch must be >= 0, got {batch}")
        return (str(phase), int(epoch), int(batch))

    def inject_nan(self, phase: str, epoch: int, batch: int = 0,
                   repeat: bool = False) -> "FaultPlan":
        """Poison one batch's targets with NaN at the given site."""
        self._nan[self._site(phase, epoch, batch)] = repeat
        return self

    def inject_interrupt(self, phase: str, epoch: int, batch: int = 0,
                         repeat: bool = False) -> "FaultPlan":
        """Raise ``KeyboardInterrupt`` (a simulated kill) at the given site."""
        self._interrupt[self._site(phase, epoch, batch)] = repeat
        return self

    def inject_random_nans(self, phase: str, *, epochs: int,
                           batches_per_epoch: int,
                           count: int = 1) -> "FaultPlan":
        """Schedule ``count`` NaN faults at seed-determined distinct sites."""
        total = epochs * batches_per_epoch
        if count > total:
            raise ConfigError(
                f"cannot place {count} faults in {total} batch slots"
            )
        slots = self._rng.choice(total, size=count, replace=False)
        for slot in np.sort(slots):
            epoch = 1 + int(slot) // batches_per_epoch
            batch = int(slot) % batches_per_epoch
            self.inject_nan(phase, epoch, batch)
        return self

    @property
    def pending(self) -> int:
        """Number of scheduled faults that have not fired yet."""
        return len(self._nan) + len(self._interrupt)

    # -- runtime hooks (called by the training loops) ------------------------

    def on_batch_start(self, phase: str, epoch: int, batch: int) -> None:
        """Fire a scheduled interrupt for this site, if any."""
        site = (phase, epoch, batch)
        if site in self._interrupt:
            if not self._interrupt[site]:
                del self._interrupt[site]
            self.fired.append(("interrupt", *site))
            raise KeyboardInterrupt(
                f"fault injection: simulated kill at {phase} "
                f"epoch {epoch}, batch {batch}"
            )

    def poison(self, phase: str, epoch: int, batch: int,
               array: np.ndarray) -> np.ndarray:
        """Return ``array``, NaN-poisoned if a NaN fault is scheduled here."""
        site = (phase, epoch, batch)
        if site not in self._nan:
            return array
        if not self._nan[site]:
            del self._nan[site]
        self.fired.append(("nan", *site))
        return np.full_like(np.asarray(array, dtype=np.float32), np.nan)

    # -- artifact corruption (used by tests and drills) ----------------------

    @staticmethod
    def truncate_file(path: PathLike, keep_bytes: int = 16) -> Path:
        """Chop a file down to its first ``keep_bytes`` bytes."""
        path = Path(path)
        data = path.read_bytes()
        path.write_bytes(data[:keep_bytes])
        return path

    @staticmethod
    def corrupt_file(path: PathLike, seed: int = 0,
                     span: int = 64) -> Path:
        """Overwrite a span in the middle of a file with deterministic junk.

        The file keeps its size, so corruption models bit rot rather than
        truncation; loaders must catch it via checksums or parse failures.
        """
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            return path
        rng = np.random.default_rng(seed)
        span = min(span, len(data))
        start = (len(data) - span) // 2
        junk = rng.integers(0, 256, size=span, dtype=np.uint8).tobytes()
        data[start:start + span] = junk
        path.write_bytes(bytes(data))
        return path
