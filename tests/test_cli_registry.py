"""The ``repro-litho registry`` group and registry-backed ``serve``, end to end.

Registry bookkeeping (publish/list/verify/promote/rollback) runs against a
cheap untrained-but-loadable weight directory — the registry never cares
how good the weights are, only that they verify.  The canary drill serves
the golden playback model as the incumbent and a published degenerate
version as the candidate, and asserts the loop rolled it back on its own
with every request answered.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.config import N10, reduced
from repro.core import LithoGan
from repro.telemetry import read_run_log, validate_run_log


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("cli_registry")


@pytest.fixture(scope="module")
def dataset_path(workspace):
    path = workspace / "tiny_n10.npz"
    code = main([
        "mint", "--node", "N10", "--clips", "6",
        "--seed", "1", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def weights_dir(workspace):
    """An untrained (but fully loadable) reduced-preset weight directory."""
    config = reduced(N10, num_clips=6, seed=1)
    model = LithoGan(config, np.random.default_rng(1))
    out = workspace / "weights"
    api.save_model(model, None, out, seed=1, node="N10")
    return out


class TestRegistryCommands:
    def test_publish_list_verify_roundtrip(self, workspace, weights_dir,
                                           capsys):
        registry = workspace / "reg_roundtrip"
        code = main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
        ])
        assert code == 0
        assert "published litho@1" in capsys.readouterr().out

        code = main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
            "--inject-degenerate",
        ])
        assert code == 0
        assert "degenerate drill" in capsys.readouterr().out

        code = main(["registry", "--registry", str(registry), "list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "litho@1" in out and "litho@2" in out

        code = main([
            "registry", "--registry", str(registry), "verify",
            "--model", "litho@2",
        ])
        assert code == 0
        assert "all checksums match" in capsys.readouterr().out

    def test_verify_corruption_exits_6_naming_the_path(
            self, workspace, weights_dir, capsys):
        registry = workspace / "reg_corrupt"
        assert main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
        ]) == 0
        capsys.readouterr()
        victim = registry / "litho" / "v000001" / "generator.npz"
        victim.write_bytes(b"flipped bits")
        code = main([
            "registry", "--registry", str(registry), "verify",
            "--model", "litho@1",
        ])
        assert code == 6
        err = capsys.readouterr().err
        assert str(victim) in err
        assert "Traceback" not in err

    def test_promote_and_rollback(self, workspace, weights_dir, capsys):
        registry = workspace / "reg_promote"
        for _ in range(2):
            assert main([
                "registry", "--registry", str(registry), "publish",
                "--name", "litho", "--weights", str(weights_dir),
            ]) == 0
        assert main([
            "registry", "--registry", str(registry), "promote",
            "--model", "litho@1",
        ]) == 0
        assert main([
            "registry", "--registry", str(registry), "promote",
            "--model", "litho@2",
        ]) == 0
        capsys.readouterr()
        code = main([
            "registry", "--registry", str(registry), "rollback",
            "--name", "litho",
        ])
        assert code == 0
        assert "@2 -> @1" in capsys.readouterr().out
        # History exhausted: the next rollback fails closed, exit 6.
        code = main([
            "registry", "--registry", str(registry), "rollback",
            "--name", "litho",
        ])
        assert code == 6

    def test_publish_promote_flag_moves_the_pointer(self, workspace,
                                                    weights_dir, capsys):
        registry = workspace / "reg_autopromote"
        assert main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
            "--promote",
        ]) == 0
        out = capsys.readouterr().out
        assert "promoted litho@1" in out
        assert main(["registry", "--registry", str(registry), "list"]) == 0
        assert "active: litho@1" in capsys.readouterr().out


class TestServeFromRegistry:
    def test_unresolvable_model_ref_exits_6(self, workspace, dataset_path,
                                            capsys):
        registry = workspace / "reg_empty"
        registry.mkdir(exist_ok=True)
        code = main([
            "serve", "--dataset", str(dataset_path),
            "--registry", str(registry), "--model", "ghost@latest",
            "--duration", "1",
        ])
        assert code == 6
        assert "ghost" in capsys.readouterr().err

    def test_canary_requires_registry(self, dataset_path, capsys):
        code = main([
            "serve", "--dataset", str(dataset_path),
            "--canary", "litho@2", "--duration", "1",
        ])
        assert code == 2
        assert "--registry" in capsys.readouterr().err

    def test_degenerate_canary_auto_rolls_back_with_zero_drops(
            self, workspace, dataset_path, weights_dir, capsys):
        registry = workspace / "reg_canary"
        assert main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
        ]) == 0
        assert main([
            "registry", "--registry", str(registry), "publish",
            "--name", "litho", "--weights", str(weights_dir),
            "--inject-degenerate",
        ]) == 0
        capsys.readouterr()

        log = workspace / "canary.jsonl"
        report = workspace / "canary.json"
        code = main([
            "serve", "--dataset", str(dataset_path), "--seed", "1",
            "--registry", str(registry), "--canary", "litho@2",
            "--canary-fraction", "0.5",
            "--duration", "2.5", "--qps-start", "40", "--qps-end", "80",
            "--soak", "--log-json", str(log), "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "automatic rollback of litho@2" in out

        payload = json.loads(report.read_text())
        assert payload["unanswered"] == 0
        assert payload["canary_rollbacks"], "no rollback verdict recorded"
        assert payload["server"]["rollbacks"] == 1
        assert payload["server"]["candidate"] is None

        events = read_run_log(log)
        validate_run_log(events)
        kinds = [event["event"] for event in events]
        assert "model_swap" in kinds
        assert "canary_verdict" in kinds
        assert "rollback" in kinds

    def test_report_summarizes_the_rollback_incident(self, workspace,
                                                     capsys):
        log = workspace / "canary.jsonl"
        if not log.exists():
            pytest.skip("canary drill has not run")
        code = main(["report", "--log", str(log), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["serving"]["rollbacks"] >= 1
        assert payload["serving"]["canary_verdicts"]["rollback"] >= 1
        assert not payload.get("unknown_events")
