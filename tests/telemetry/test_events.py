"""Run-log JSONL: round-trip, crash tolerance, sequence validation."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    SCHEMA_VERSION,
    RunLogger,
    next_run_id,
    read_run_log,
    split_runs,
    validate_run_log,
)


def _write_run(path, epochs=2):
    with RunLogger(path) as logger:
        logger.run_start(command="train", node="N10")
        for epoch in range(1, epochs + 1):
            logger.epoch_end(
                epoch, seconds=0.5, phase="cgan",
                d_loss=1.0, g_loss=2.0, l1=0.3,
            )
        logger.stage_end("cgan", 1.0)
        logger.eval_end(ede_mean_nm=1.5)
        logger.run_end(status="ok", seconds=2.0)
        return logger.run_id


class TestRunLogger:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_id = _write_run(path)
        events = read_run_log(path)
        assert [e["event"] for e in events] == [
            "run_start", "epoch_end", "epoch_end",
            "stage_end", "eval_end", "run_end",
        ]
        assert all(e["run_id"] == run_id for e in events)
        assert all(e["schema_version"] == SCHEMA_VERSION for e in events)
        assert [e["seq"] for e in events] == list(range(6))
        validate_run_log(events)

    def test_epoch_end_carries_losses_and_seconds(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, epochs=1)
        epoch = read_run_log(path)[1]
        assert epoch["epoch"] == 1
        assert epoch["d_loss"] == 1.0
        assert epoch["g_loss"] == 2.0
        assert epoch["l1"] == 0.3
        assert epoch["seconds"] == 0.5

    def test_run_ids_are_monotonic(self):
        first, second = next_run_id(), next_run_id()
        assert first != second
        assert int(first.rsplit("-", 1)[1]) < int(second.rsplit("-", 1)[1])

    def test_rejects_unknown_event_type(self, tmp_path):
        with RunLogger(tmp_path / "run.jsonl") as logger:
            with pytest.raises(TelemetryError):
                logger.emit("mystery_event")

    def test_emit_after_close_raises(self, tmp_path):
        logger = RunLogger(tmp_path / "run.jsonl")
        logger.close()
        assert logger.closed
        with pytest.raises(TelemetryError):
            logger.run_start()

    def test_append_mode_preserves_prior_runs(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        _write_run(path, epochs=1)
        _write_run(path, epochs=1)
        runs = split_runs(read_run_log(path))
        assert len(runs) == 2
        for run in runs:
            validate_run_log(run)
        assert runs[0][0]["run_id"] != runs[1][0]["run_id"]


class TestCrashTolerance:
    def test_partial_log_readable_after_simulated_crash(self, tmp_path):
        path = tmp_path / "run.jsonl"
        logger = RunLogger(path)
        logger.run_start(command="train")
        logger.epoch_end(1, seconds=0.1, phase="cgan",
                         d_loss=1.0, g_loss=2.0, l1=0.3)
        # crash: process dies mid-write of the next record; the flushed
        # prefix plus torn garbage is what remains on disk
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "run_id": "run-')
        events = read_run_log(path)
        assert [e["event"] for e in events] == ["run_start", "epoch_end"]
        validate_run_log(events, require_run_end=False)
        with pytest.raises(TelemetryError):
            validate_run_log(events)  # missing run_end is flagged by default

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path)
        lines = path.read_text().splitlines()
        lines[2] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TelemetryError):
            read_run_log(path)


class TestValidation:
    def _events(self, path, tmp_path=None):
        _write_run(path)
        return read_run_log(path)

    def test_empty_log_rejected(self):
        with pytest.raises(TelemetryError):
            validate_run_log([])

    def test_must_open_with_run_start(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        with pytest.raises(TelemetryError):
            validate_run_log(events[1:], require_run_end=True)

    def test_non_monotonic_seq_rejected(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        events[2]["seq"] = events[1]["seq"]
        with pytest.raises(TelemetryError):
            validate_run_log(events)

    def test_non_increasing_epoch_rejected(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        events[2]["epoch"] = events[1]["epoch"]
        with pytest.raises(TelemetryError):
            validate_run_log(events)

    def test_mixed_run_ids_rejected(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        events[3]["run_id"] = "run-999-9999"
        with pytest.raises(TelemetryError):
            validate_run_log(events)

    def test_run_end_must_be_terminal(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        reordered = events[:-2] + [events[-1], events[-2]]
        # keep seq increasing so only the placement rule fires
        for seq, record in enumerate(reordered):
            record["seq"] = seq
        with pytest.raises(TelemetryError):
            validate_run_log(reordered)

    def test_wrong_schema_version_rejected(self, tmp_path):
        events = self._events(tmp_path / "r.jsonl")
        events[1]["schema_version"] = 99
        with pytest.raises(TelemetryError):
            validate_run_log(events)


class TestDataIntegrityEvents:
    def _run_with(self, path, emit):
        with RunLogger(path) as logger:
            logger.run_start(command="evaluate")
            emit(logger)
            logger.run_end(status="ok", seconds=1.0)
        return read_run_log(path)

    def test_quarantine_event_round_trips(self, tmp_path):
        events = self._run_with(
            tmp_path / "r.jsonl",
            lambda log: log.data_quarantine(
                2, 12, reasons={"hash": 2}, manifest_missing=False),
        )
        validate_run_log(events)
        record = events[1]
        assert record["event"] == "data_quarantine"
        assert record["quarantined"] == 2
        assert record["total"] == 12
        assert record["reasons"] == {"hash": 2}

    def test_repair_event_round_trips(self, tmp_path):
        events = self._run_with(
            tmp_path / "r.jsonl",
            lambda log: log.data_repair(3, indices=[1, 4, 7]),
        )
        validate_run_log(events)
        assert events[1]["repaired"] == 3
        assert events[1]["indices"] == [1, 4, 7]

    def test_quarantine_exceeding_total_rejected(self, tmp_path):
        events = self._run_with(
            tmp_path / "r.jsonl",
            lambda log: log.data_quarantine(13, 12),
        )
        with pytest.raises(TelemetryError, match="quarantines"):
            validate_run_log(events)

    def test_negative_counts_rejected(self, tmp_path):
        events = self._run_with(
            tmp_path / "r.jsonl",
            lambda log: log.data_quarantine(0, 12),
        )
        events[1]["quarantined"] = -1
        with pytest.raises(TelemetryError, match="bad quarantined"):
            validate_run_log(events)

    def test_bad_repaired_count_rejected(self, tmp_path):
        events = self._run_with(
            tmp_path / "r.jsonl",
            lambda log: log.data_repair(1),
        )
        events[1]["repaired"] = "three"
        with pytest.raises(TelemetryError, match="bad repaired"):
            validate_run_log(events)


class TestForwardCompat:
    """An older reader must survive logs written by a newer repro."""

    def _append(self, path, record):
        with open(path, "a") as handle:
            handle.write(json.dumps(record) + "\n")

    def test_read_run_log_tolerates_unknown_event_types(self, tmp_path):
        path = tmp_path / "run.jsonl"
        logger = RunLogger(path)
        logger.run_start(command="train")
        logger.close()
        self._append(path, {
            "schema_version": SCHEMA_VERSION, "run_id": logger.run_id,
            "seq": 99, "event": "quantum_flux", "time_unix": 0.0,
        })
        events = read_run_log(path)
        assert events[-1]["event"] == "quantum_flux"
        # strict validation still rejects it — the reader is lenient,
        # the single-run checker is not
        with pytest.raises(TelemetryError, match="unknown type"):
            validate_run_log(events, require_run_end=False)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path)
        text = path.read_text().splitlines()
        text.insert(1, "")
        text.insert(3, "   ")
        path.write_text("\n".join(text) + "\n")
        events = read_run_log(path)
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"

    def test_truncated_final_line_then_new_run_appends_cleanly(self, tmp_path):
        # crash mid-write, then RunLogger starts a new run in the same file:
        # the torn record sits on its own line, so the reader still refuses
        # (corruption is no longer final) — recovery is a fresh log, and
        # this pins that contract down
        path = tmp_path / "run.jsonl"
        _write_run(path)
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "torn')
        events = read_run_log(path)  # torn final line tolerated
        assert events[-1]["event"] == "run_end"


class TestSplitRuns:
    def test_interleaved_multi_run_log_groups_by_run_start(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ids = [_write_run(path) for _ in range(3)]
        runs = split_runs(read_run_log(path))
        assert len(runs) == 3
        assert [run[0]["run_id"] for run in runs] == ids
        for run in runs:
            assert run[0]["event"] == "run_start"
            assert run[-1]["event"] == "run_end"
            validate_run_log(run)

    def test_orphaned_leading_tail_forms_its_own_group(self, tmp_path):
        # the tail of a previously truncated log (no run_start) must not be
        # silently folded into the following complete run
        path = tmp_path / "run.jsonl"
        orphan = {"schema_version": SCHEMA_VERSION, "run_id": "run-lost",
                  "seq": 7, "event": "epoch_end", "time_unix": 0.0,
                  "epoch": 3, "phase": "cgan"}
        with open(path, "w") as handle:
            handle.write(json.dumps(orphan) + "\n")
        run_id = _write_run(path)
        runs = split_runs(read_run_log(path))
        assert len(runs) == 2
        assert runs[0] == [orphan]
        assert runs[1][0]["run_id"] == run_id

    def test_empty_stream_has_no_runs(self):
        assert split_runs([]) == []


class TestTrialEvents:
    def test_trial_lifecycle_round_trips_and_validates(self, tmp_path):
        from repro.telemetry.events import (
            RunLogger,
            read_run_log,
            validate_run_log,
        )

        path = tmp_path / "run.jsonl"
        with RunLogger(path) as logger:
            logger.run_start(command="sweep")
            logger.trial_start("d1", 1, trial="trial-000")
            logger.trial_retry("d1", 1, "diverged", trial="trial-000",
                               delay_s=0.5)
            logger.trial_start("d1", 2, trial="trial-000")
            logger.trial_end("d1", "completed", trial="trial-000",
                             attempts=2, seconds=4.2)
            logger.run_end(status="ok")
        events = read_run_log(path)
        validate_run_log(events)
        kinds = [e["event"] for e in events]
        assert kinds == ["run_start", "trial_start", "trial_retry",
                         "trial_start", "trial_end", "run_end"]
        assert events[2]["reason"] == "diverged"
        assert events[4]["status"] == "completed"

    def test_trial_events_without_digest_rejected(self, tmp_path):
        from repro.errors import TelemetryError
        from repro.telemetry.events import (
            RunLogger,
            read_run_log,
            validate_run_log,
        )

        path = tmp_path / "run.jsonl"
        with RunLogger(path) as logger:
            logger.run_start(command="sweep")
            logger.trial_start("", 1)
            logger.run_end(status="ok")
        with pytest.raises(TelemetryError, match="missing a trial digest"):
            validate_run_log(read_run_log(path))

    def test_trial_retry_requires_a_reason(self, tmp_path):
        from repro.errors import TelemetryError
        from repro.telemetry.events import (
            RunLogger,
            read_run_log,
            validate_run_log,
        )

        path = tmp_path / "run.jsonl"
        with RunLogger(path) as logger:
            logger.run_start(command="sweep")
            logger.trial_retry("d1", 1, "")
            logger.run_end(status="ok")
        with pytest.raises(TelemetryError, match="missing a reason"):
            validate_run_log(read_run_log(path))

    def test_trial_end_status_must_be_terminal(self, tmp_path):
        from repro.errors import TelemetryError
        from repro.telemetry.events import (
            RunLogger,
            read_run_log,
            validate_run_log,
        )

        path = tmp_path / "run.jsonl"
        with RunLogger(path) as logger:
            logger.run_start(command="sweep")
            logger.trial_end("d1", "retrying", attempts=1)
            logger.run_end(status="ok")
        with pytest.raises(TelemetryError, match="bad status"):
            validate_run_log(read_run_log(path))
